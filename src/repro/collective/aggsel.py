"""Fabric-aware aggregator selection for two-phase collective I/O.

Under a finite-buffer fabric the two phases of a collective write are
themselves incasts: phase 1 converges every rank's shuffle flow on each
aggregator's switch port, and phase 2 converges the aggregators' writes
on the storage servers' ports.  The PDSI incast study shows what happens
when such a synchronized fan-in exceeds a port's output buffer — full-
window losses idle the flow for a (min-)RTO while the link sits dark.

This module chooses the aggregator **count** and **placement** against
:class:`repro.net.fabric.FabricParams` instead of from the file layout
alone:

* **count** — start from one aggregator per storage server (the most
  phase-2 parallelism the servers can use) and shrink while the implied
  per-flow shuffle slice is thinner than one initial congestion window:
  sub-window flows pay pure round-trip latency per slice, so splitting
  further cannot help;
* **placement** — each aggregator's file domain is a *server column*:
  the union of every stripe chunk living on that aggregator's group of
  servers.  Phase-2 traffic into any server port then comes from exactly
  one aggregator (fan-in 1), and domain boundaries are stripe-aligned so
  no lock block is ever shared between aggregators;
* **fan-in bound** — the phase-1 shuffle is throttled to
  :meth:`repro.net.fabric.SwitchPort.safe_fanin` concurrent senders per
  aggregator port: every admitted flow's initial window fits the port
  buffer simultaneously, so the shuffle cannot trigger a full-window
  loss (the RTO path).  An optional :class:`repro.net.fabric.
  FabricFeedback` cost discounts the headroom of a port that is already
  carrying background traffic.

The ideal fabric degenerates gracefully: the fan-in cap becomes
unbounded and the plan differs from the layout-aware scheme only in its
server-column (rather than contiguous) domains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.fabric import FabricParams, Link, SwitchPort
from repro.pfs.params import PFSParams
from repro.workloads.patterns import Pattern, overlap_bytes

Extents = tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class AggregatorPlan:
    """One resolved aggregator assignment for a collective write.

    Attributes
    ----------
    scheme: the scheme label this plan implements (``"fabric-aware"``).
    n_aggregators: chosen aggregator count (may differ from the
        requested count when the fabric math says so).
    requested_aggregators: the caller's hint, recorded for reporting.
    domains: per-aggregator file domains as tuples of disjoint half-open
        ``(lo, hi)`` byte extents, in ascending order.
    server_groups: per-aggregator tuple of storage-server indices whose
        stripe chunks make up that aggregator's domain.
    phase1_fanin_cap: max concurrent shuffle senders per aggregator
        switch port (``2**30`` on an ideal fabric).
    """

    scheme: str
    n_aggregators: int
    requested_aggregators: int
    domains: tuple[Extents, ...]
    server_groups: tuple[tuple[int, ...], ...]
    phase1_fanin_cap: int

    @property
    def total_bytes(self) -> int:
        return sum(hi - lo for exts in self.domains for lo, hi in exts)

    def __post_init__(self) -> None:
        if self.n_aggregators != len(self.domains):
            raise ValueError("one domain per aggregator required")
        if self.phase1_fanin_cap < 1:
            raise ValueError("phase-1 fan-in cap must be >= 1")


def server_column_domains(
    total_bytes: int,
    n_servers: int,
    stripe_unit: int,
    n_aggregators: int,
    shift: int = 0,
) -> tuple[list[Extents], list[tuple[int, ...]]]:
    """Partition ``[0, total_bytes)`` into per-aggregator server columns.

    Servers are split into ``n_aggregators`` contiguous groups (sizes
    differing by at most one); aggregator ``g``'s domain is every stripe
    chunk whose server — ``(chunk + shift) % n_servers`` under the
    shifted round-robin :class:`repro.pfs.layout.StripeLayout` — falls
    in group ``g``.  Adjacent chunks of one group merge into runs, so a
    group of ``k`` consecutive servers yields extents of ``k *
    stripe_unit`` bytes every ``n_servers * stripe_unit`` bytes.

    Returns ``(domains, groups)``; zero-byte domains are never emitted
    (a tail shorter than one round of chunks can leave late groups
    empty — those aggregators are dropped by the caller).
    """
    if n_aggregators < 1 or n_servers < 1 or stripe_unit < 1:
        raise ValueError("need n_aggregators, n_servers, stripe_unit >= 1")
    n_aggregators = min(n_aggregators, n_servers)
    base, extra = divmod(n_servers, n_aggregators)
    groups: list[tuple[int, ...]] = []
    start = 0
    for g in range(n_aggregators):
        size = base + (1 if g < extra else 0)
        groups.append(tuple(range(start, start + size)))
        start += size
    owner = {}
    for g, members in enumerate(groups):
        for s in members:
            owner[s] = g
    n_units = -(-total_bytes // stripe_unit)  # ceil
    extents: list[list[tuple[int, int]]] = [[] for _ in range(n_aggregators)]
    for chunk in range(n_units):
        g = owner[(chunk + shift) % n_servers]
        lo = chunk * stripe_unit
        hi = min(lo + stripe_unit, total_bytes)
        runs = extents[g]
        if runs and runs[-1][1] == lo:
            runs[-1] = (runs[-1][0], hi)
        else:
            runs.append((lo, hi))
    return [tuple(e) for e in extents], groups


def shuffle_matrix(
    pattern: Pattern, domains: tuple[Extents, ...] | list[Extents]
) -> list[list[tuple[int, int]]]:
    """Per-aggregator phase-1 sender list: ``[(rank, nbytes), ...]``.

    Entry ``g`` holds every rank with a positive byte overlap against
    aggregator ``g``'s domain — exactly the flows that will converge on
    that aggregator's switch port during the shuffle.
    """
    out: list[list[tuple[int, int]]] = []
    for extents in domains:
        sends = []
        for rank, writes in enumerate(pattern):
            nb = overlap_bytes(writes, extents)
            if nb > 0:
                sends.append((rank, nb))
        out.append(sends)
    return out


def phase1_fanin_cap(
    params: PFSParams,
    fabric: Optional[FabricParams] = None,
    cost: float = 0.0,
) -> int:
    """The per-aggregator-port shuffle fan-in bound for this deployment.

    Builds the aggregator's client-side port geometry (client link +
    fabric) and delegates to :meth:`repro.net.fabric.SwitchPort.
    safe_fanin`; ``cost`` is a congestion discount, typically the
    relevant :class:`repro.net.fabric.FabricFeedback` EWMA cost.
    """
    fab = fabric if fabric is not None else params.fabric
    port = SwitchPort(Link(params.client_nic_Bps), fab)
    return port.safe_fanin(cost=cost)


def select_aggregators(
    total_bytes: int,
    n_ranks: int,
    params: PFSParams,
    pattern: Optional[Pattern] = None,
    requested: Optional[int] = None,
    feedback=None,
    shift: int = 0,
) -> AggregatorPlan:
    """Choose aggregator count and placement against the fabric.

    Parameters
    ----------
    total_bytes: collective write size in bytes.
    n_ranks: application processes feeding the shuffle.
    params: the target :class:`~repro.pfs.params.PFSParams` (supplies
        ``n_servers``, ``stripe_unit``, ``client_nic_Bps`` and the
        :class:`~repro.net.fabric.FabricParams`).
    pattern: optional per-rank write pattern; when given, the count
        search checks *actual* shuffle-slice sizes instead of the even
        estimate.
    requested: the caller's aggregator-count hint (recorded in the
        plan; the fabric math may override it).
    feedback: optional :class:`~repro.net.fabric.FabricFeedback`; its
        maximum current port cost discounts the phase-1 fan-in bound
        (a switch already hot from background traffic has less buffer
        headroom to offer a synchronized shuffle).
    shift: the file's starting-server rotation
        (:attr:`repro.pfs.system.FileHandle.shift`).

    The count rule: start at ``min(n_servers, n_ranks)`` — one server
    group per aggregator maximizes phase-2 parallelism while keeping
    per-server-port fan-in at 1 — then halve while the thinnest phase-1
    flow would carry less than one initial congestion window of data
    (``init_cwnd * pkt_bytes``): flows below that floor are pure
    latency, so more aggregators only multiply round trips.
    """
    if total_bytes < 1 or n_ranks < 1:
        raise ValueError("need total_bytes and n_ranks >= 1")
    fab = params.fabric
    cost = 0.0
    if feedback is not None:
        costs = feedback.costs()
        cost = max(costs) if costs else 0.0
    cap = phase1_fanin_cap(params, fab, cost=cost)
    floor_bytes = fab.init_cwnd * fab.pkt_bytes
    n = max(1, min(params.n_servers, n_ranks))
    while n > 1:
        domains, groups = server_column_domains(
            total_bytes, params.n_servers, params.stripe_unit, n, shift=shift
        )
        if pattern is not None:
            slices = [nb for sends in shuffle_matrix(pattern, domains) for _, nb in sends]
        else:
            slices = [total_bytes // (n_ranks * n)]
        thinnest = min(slices) if slices else 0
        if fab.ideal or thinnest >= floor_bytes:
            break
        n = n // 2
    domains, groups = server_column_domains(
        total_bytes, params.n_servers, params.stripe_unit, n, shift=shift
    )
    keep = [g for g, exts in enumerate(domains) if exts]
    return AggregatorPlan(
        scheme="fabric-aware",
        n_aggregators=len(keep),
        requested_aggregators=requested if requested is not None else n,
        domains=tuple(domains[g] for g in keep),
        server_groups=tuple(groups[g] for g in keep),
        phase1_fanin_cap=cap,
    )
