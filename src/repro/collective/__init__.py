"""Layout- and fabric-aware collective I/O (report §5.4.2, ORNL close-out).

Two-phase collective I/O gathers the ranks' scattered requests at a few
*aggregator* processes, which then write large contiguous *file domains*.
Stock ROMIO partitions the aggregate byte range evenly — oblivious to the
parallel file system's striping — so every aggregator's domain straddles
stripe and lock boundaries shared with its neighbour.  Layout-aware
assignment aligns each domain to stripe-unit boundaries (and associates
aggregators with servers), eliminating boundary read-modify-writes and
cutting per-server request counts; the report measured ≥24% benefit,
growing with process count.

Fabric-aware assignment (:mod:`repro.collective.aggsel`) goes one layer
deeper: both phases of the collective are synchronized fan-ins, so the
aggregator count, the server-column placement, and the phase-1 shuffle
concurrency are all chosen against the switch-port buffer math of
:mod:`repro.net.fabric` — see docs/collective.md.
"""

from repro.collective.aggsel import (
    AggregatorPlan,
    domains_for_groups,
    phase1_fanin_cap,
    rack_aligned_groups,
    select_aggregators,
    server_column_domains,
    shuffle_matrix,
)
from repro.collective.twophase import (
    SCHEMES,
    CollectiveConfig,
    CollectiveResult,
    aligned_domains,
    even_domains,
    run_collective_write,
)

__all__ = [
    "AggregatorPlan",
    "CollectiveConfig",
    "CollectiveResult",
    "SCHEMES",
    "aligned_domains",
    "domains_for_groups",
    "even_domains",
    "phase1_fanin_cap",
    "rack_aligned_groups",
    "run_collective_write",
    "select_aggregators",
    "server_column_domains",
    "shuffle_matrix",
]
