"""Layout-aware collective I/O (report §5.4.2, ORNL close-out).

Two-phase collective I/O gathers the ranks' scattered requests at a few
*aggregator* processes, which then write large contiguous *file domains*.
Stock ROMIO partitions the aggregate byte range evenly — oblivious to the
parallel file system's striping — so every aggregator's domain straddles
stripe and lock boundaries shared with its neighbour.  Layout-aware
assignment aligns each domain to stripe-unit boundaries (and associates
aggregators with servers), eliminating boundary read-modify-writes and
cutting per-server request counts; the report measured ≥24% benefit,
growing with process count.
"""

from repro.collective.twophase import (
    CollectiveConfig,
    CollectiveResult,
    aligned_domains,
    even_domains,
    run_collective_write,
)

__all__ = [
    "CollectiveConfig",
    "CollectiveResult",
    "aligned_domains",
    "even_domains",
    "run_collective_write",
]
