"""Shared network fabric: links, switch ports, and topologies.

The PDSI report treats the network as a first-class part of the storage
stack — its incast study (Phanishayee et al., FAST'08) shows *switch
output-buffer overflow*, not disks, capping striped-read goodput.  This
module is the one place the reproduction models that network:

* :class:`Link` — a point-to-point link, fixed latency plus
  serialization at bandwidth;
* :class:`FabricParams` — the congestion knobs every consumer shares:
  packet size, per-port output-buffer depth, RTT, minimum RTO (with
  optional jitter), and TCP-ish window limits.  ``buffer_pkts=None`` is
  the degenerate **ideal** fabric: infinite buffers, no contention —
  pure latency+bandwidth arithmetic, bit-stable with the historical
  inline NIC math;
* :class:`SwitchPort` — one switch output port: a link plus a finite
  shared output buffer, with drop/timeout/window semantics generalized
  from the incast model and per-port ``repro.obs`` metrics
  (drops, timeouts, retransmits, occupancy, bytes);
* :class:`Topology` — client NICs → switch → server NICs, driven as
  :class:`repro.sim.Simulator` processes.  Used by
  :class:`repro.pfs.SimPFS` for every client→server request and
  server→client reply, by :mod:`repro.dfs` for remote shuffle reads,
  and by :mod:`repro.pnfs` for NFS/pNFS writes;
* :class:`LeafSpineParams` — the two-tier topology option: clients and
  servers live in racks behind leaf switches joined by spine uplinks
  with a configurable oversubscription ratio.  Cross-rack flows then
  traverse a *path* of :class:`SwitchPort` hops (source leaf uplink →
  destination leaf downlink → destination edge port), each with its own
  finite buffer, drops, RTOs, blackouts, and tenant attribution;
* :func:`synchronized_fanin` — the round-based engine behind the
  incast reproduction (one round = one RTT), now a fabric primitive so
  ``repro.net.incast`` is a thin configuration of it.

Three drive modes share the same :class:`SwitchPort` semantics:

=============  =======================================================
process mode   :meth:`Topology.to_server` / :meth:`Topology.to_client`
               are generators; admitted packets occupy the port buffer
               until the port's link (a capacity-1 resource) drains
               them; a flow finding the buffer full suffers a full-
               window loss and sits out a (min-)RTO before retrying.
               This is ``FabricParams.mode="exact"``, the default,
               pinned bit-identical by the goldens.
fluid mode     ``FabricParams.mode="fluid"`` routes the same
               :meth:`Topology.to_server` / :meth:`~Topology.to_client`
               calls through :class:`repro.net.fluid.FluidEngine`:
               flows are max-min fair bandwidth *shares* over their hop
               path, recomputed at tick intervals, with synchronized
               bursts stall-probed through the window dynamics.  ~100×
               fewer simulator events; matches exact-mode curves within
               the tolerance stated in ``docs/performance.md``.
round mode     :func:`synchronized_fanin` advances whole RTT rounds
               with vectorized window/drop/RTO bookkeeping — exactly
               the published incast model.
=============  =======================================================

All randomness (drop selection, RTO jitter) flows through an explicit
``numpy.random.Generator`` so two same-seed runs are identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.net.fluid import FluidEngine, windowed_rounds
from repro.sim import Acquire, Resource, Simulator, Timeout

#: Occupancy histogram bucket edges (packets queued at a port).
OCCUPANCY_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)


@dataclass(frozen=True)
class Link:
    """A point-to-point link: fixed latency plus serialization at bandwidth."""

    bandwidth_Bps: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_Bps <= 0:
            raise ValueError(f"link bandwidth must be > 0, got {self.bandwidth_Bps}")
        if self.latency_s < 0:
            raise ValueError(f"link latency must be >= 0, got {self.latency_s}")

    def transfer_s(self, nbytes: float) -> float:
        """Time to move ``nbytes`` across this link, uncontended."""
        if math.isinf(self.bandwidth_Bps):
            return self.latency_s
        return self.latency_s + nbytes / self.bandwidth_Bps


def fluid_shared_Bps(edge_Bps: float, aggregate_Bps: float, n_sharers: int) -> float:
    """Effective per-flow bandwidth on an edge link behind a shared aggregate.

    The fluid model every inline ``min(nic, backplane/share)`` expression
    used to spell by hand: a flow gets its edge rate until ``n_sharers``
    concurrent flows oversubscribe the aggregate (a backplane, a spine
    uplink), at which point the aggregate is divided fairly.

    >>> fluid_shared_Bps(112e6, 640e6, 4)
    112000000.0
    >>> fluid_shared_Bps(112e6, 640e6, 8)
    80000000.0
    """
    return min(edge_Bps, aggregate_Bps / max(1, n_sharers))


@dataclass(frozen=True)
class LeafSpineParams:
    """Two-tier leaf/spine shape for :class:`Topology`.

    Endpoints live in racks behind leaf switches; leaves join through
    spine uplinks whose bandwidth is derived from the rack's aggregate
    edge bandwidth divided by ``oversubscription``.  Same-rack traffic
    only crosses the destination edge port (exactly the flat topology);
    cross-rack traffic additionally crosses the source leaf's uplink and
    the destination leaf's downlink.

    Attributes
    ----------
    n_racks: number of racks (leaf switches).  Servers are assigned to
        racks in contiguous blocks (``rack = server * n_racks //
        n_servers``); clients round-robin across racks (``rack = client
        % n_racks``) unless ``clients_per_rack`` pins them in blocks.
    oversubscription: ratio of a rack's aggregate edge bandwidth to its
        spine uplink bandwidth (default 1.0 — non-blocking).  The
        canonical congested fabric is 4:1 (``oversubscription=4.0``).
    clients_per_rack: when set, client ``c`` lives in rack
        ``(c // clients_per_rack) % n_racks`` — contiguous client
        blocks, matching how rack-aware workloads number their ranks.
    """

    n_racks: int = 2
    oversubscription: float = 1.0
    clients_per_rack: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_racks < 1:
            raise ValueError(f"n_racks must be >= 1, got {self.n_racks}")
        if self.oversubscription < 1.0:
            raise ValueError(
                f"oversubscription must be >= 1.0, got {self.oversubscription}"
            )
        if self.clients_per_rack is not None and self.clients_per_rack < 1:
            raise ValueError(
                f"clients_per_rack must be >= 1 (or None), got {self.clients_per_rack}"
            )


@dataclass(frozen=True)
class FabricParams:
    """Congestion knobs shared by every fabric consumer.

    ``buffer_pkts=None`` with the default ``mode="exact"`` selects the
    **ideal** fabric — infinite buffers, no contention — under which
    :class:`Topology` reproduces plain ``latency + nbytes/bandwidth``
    arithmetic exactly.

    Two drive modes share every knob (see ``docs/performance.md`` for
    the tolerance contract between them):

    * ``mode="exact"`` — per-packet windowed rounds
      (:meth:`Topology._windowed`): admission against finite buffers,
      tail drops, fast retransmit, full-window-loss RTOs.  Goldens pin
      this mode bit-identical.
    * ``mode="fluid"`` — tick-interval max-min fair-share rates
      (:class:`repro.net.fluid.FluidEngine`): flows hold bandwidth
      shares on their hop path, synchronized bursts are stall-probed
      through the same window dynamics, and event cost is per *flow*,
      not per packet round — the mode for 10⁵–10⁶-client sweeps.

    Attributes
    ----------
    name: label for reports and port metrics (default ``"ideal"``).
        Both modes.
    buffer_pkts: per-port shared output buffer, in packets.  ``None``
        (the default) is the infinite buffer; real 2008-era top-of-rack
        switches buffered 32–128 packets per port.  Exact mode: gates
        admission per round.  Fluid mode: sizes the burst-stall probe's
        round capacity (``None`` disables the probe — pure sharing).
    pkt_bytes: packet (MTU) size in bytes (default 1500, Ethernet).
        Both modes: sets packet counts, serialization times, and the
        fluid latency surcharge.
    rtt_s: base round-trip time in seconds (default 100 µs, one
        datacenter switch hop).  Exact mode: one RTT per window round.
        Fluid mode: the per-round term of the latency surcharge and the
        default ``fluid_tick_s``.
    min_rto_s: minimum retransmission timeout in seconds (default 0.2 —
        the historical 200 ms TCP floor whose reduction to ~1 ms is the
        published incast fix).  Exact mode: full-window-loss sit-out.
        Fluid mode: the burst-probe stall quantum.
    rto_jitter: when True, each RTO is scaled by a uniform factor in
        [0.5, 1.5) drawn from the seeded generator (default False).
        Exact mode only — the fluid probe is deterministic and unjittered.
    init_cwnd: initial congestion window, in packets (default 2).  Both
        modes (fluid: ramp round count + probe).
    max_cwnd: congestion-window growth cap, in packets (default 64).
        Both modes (fluid: steady-state round count — the surcharge's
        ``rtt/max_cwnd`` per-packet pacing term).
    seed: seed for drop sampling and RTO jitter (default 42).  Exact
        mode only — fluid consumes no randomness.
    leafspine: optional :class:`LeafSpineParams`; ``None`` (the
        default) keeps the flat single-switch topology.  Both modes
        (fluid flows hold shares on every hop of the spine path).
    mode: ``"exact"`` (default) or ``"fluid"`` — see above.
    fluid_tick_s: fluid-mode rate-recompute / completion-batch interval
        in seconds; ``None`` (the default) means one ``rtt_s``.  The
        coarser the tick, the cheaper and the blurrier the mode; exact
        mode ignores it.
    """

    name: str = "ideal"
    buffer_pkts: Optional[int] = None    # per-port output buffer; None = infinite
    pkt_bytes: int = 1500
    rtt_s: float = 100e-6
    min_rto_s: float = 0.2               # the historical 200 ms minimum
    rto_jitter: bool = False             # randomize the timeout
    init_cwnd: int = 2
    max_cwnd: int = 64
    seed: int = 42                       # drop sampling + RTO jitter
    leafspine: Optional[LeafSpineParams] = None
    mode: str = "exact"                  # "exact" | "fluid"
    fluid_tick_s: Optional[float] = None  # fluid recompute tick; None = rtt_s

    def __post_init__(self) -> None:
        if self.buffer_pkts is not None and self.buffer_pkts < 1:
            raise ValueError(f"buffer_pkts must be >= 1 (or None), got {self.buffer_pkts}")
        if self.pkt_bytes < 1:
            raise ValueError(f"pkt_bytes must be >= 1, got {self.pkt_bytes}")
        if self.init_cwnd < 1 or self.max_cwnd < self.init_cwnd:
            raise ValueError("need 1 <= init_cwnd <= max_cwnd")
        if self.mode not in ("exact", "fluid"):
            raise ValueError(f'mode must be "exact" or "fluid", got {self.mode!r}')
        if self.fluid_tick_s is not None and self.fluid_tick_s <= 0:
            raise ValueError(f"fluid_tick_s must be > 0 (or None), got {self.fluid_tick_s}")

    @property
    def ideal(self) -> bool:
        """True for the no-contention scalar-arithmetic path.

        Only the *exact* mode has an ideal shortcut: under
        ``mode="fluid"`` even infinite buffers route through the fluid
        engine, so concurrent flows share link bandwidth.
        """
        return self.buffer_pkts is None and self.mode == "exact"

    @property
    def fluid(self) -> bool:
        return self.mode == "fluid"

    def rto_s(self, rng: Optional[np.random.Generator] = None) -> float:
        """One retransmission timeout; jittered through ``rng`` if enabled."""
        base = max(self.min_rto_s, 2.0 * self.rtt_s)
        if self.rto_jitter and rng is not None:
            return base * (0.5 + float(rng.random()))
        return base


#: The degenerate no-contention configuration (the pre-fabric behaviour).
IDEAL_FABRIC = FabricParams()


class SwitchPort:
    """One switch output port: a link plus a finite shared output buffer.

    Tracks occupancy (packets admitted but not yet drained) and exposes
    per-port ``repro.obs`` metrics.  With ``sim`` given, the port also
    owns a capacity-1 :class:`~repro.sim.Resource` modelling the output
    link, so process-mode transfers serialize through it; without a
    simulator the port is a pure accounting object for the round-based
    engine.

    **Label scheme / authority.**  The ``total_*`` attributes
    (:attr:`total_drops_pkts`, :attr:`total_timeouts`,
    :attr:`total_retransmits`, :attr:`total_bytes`,
    :attr:`total_blackouts`) are the *authoritative* always-on counts:
    plain ints, present with or without a metrics bundle, snapshot via
    :meth:`stats`.  When a bundle is attached the single
    ``record_*`` write points mirror every bump into the registry under
    one consistent scheme — ``net.fabric.<what>{port=<name>}`` for
    counters (``drops_pkts``, ``timeouts``, ``retransmits``, ``bytes``,
    ``blackouts``) — so the two views cannot drift.  Occupancy
    (``net.fabric.occupancy_pkts`` gauge + ``.hist`` histogram) is
    obs-only: it is an instantaneous reading, not a total.  Per-tenant
    damage attribution lives under ``net.fabric.tenant.<what>{tenant=}``
    (recorded by :meth:`Topology._windowed` from the request context),
    deliberately a *separate* metric family so per-port label sets stay
    exactly as :class:`FabricFeedback` expects.
    """

    def __init__(
        self,
        link: Link,
        fabric: FabricParams,
        sim: Optional[Simulator] = None,
        obs=None,
        name: str = "port",
    ) -> None:
        self.link = link
        self.fabric = fabric
        self.name = name
        self.occupancy_pkts = 0
        self.down = False  # fault injection: blacked-out port delivers nothing
        # always-on local totals (mirrored into obs when a registry is
        # attached) so consumers — aggregator selection, benchmarks —
        # can read per-port damage without an active metrics bundle
        self.total_drops_pkts = 0
        self.total_timeouts = 0
        self.total_retransmits = 0
        self.total_bytes = 0
        self.total_blackouts = 0
        self.res: Optional[Resource] = (
            Resource(sim, capacity=1, name=f"{name}.link") if sim is not None else None
        )
        if obs is not None:
            m = obs.metrics
            self._c_drops = m.counter("net.fabric.drops_pkts", port=name)
            self._c_timeouts = m.counter("net.fabric.timeouts", port=name)
            self._c_retransmits = m.counter("net.fabric.retransmits", port=name)
            self._c_bytes = m.counter("net.fabric.bytes", port=name)
            self._c_blackouts = m.counter("net.fabric.blackouts", port=name)
            self._g_occupancy = m.gauge("net.fabric.occupancy_pkts", port=name)
            self._h_occupancy = m.histogram(
                "net.fabric.occupancy_pkts.hist", buckets=OCCUPANCY_BUCKETS, port=name
            )
        else:
            self._c_drops = self._c_timeouts = self._c_retransmits = None
            self._c_bytes = self._c_blackouts = None
            self._g_occupancy = self._h_occupancy = None

    # -- geometry ------------------------------------------------------
    @property
    def pkt_time_s(self) -> float:
        return self.fabric.pkt_bytes / self.link.bandwidth_Bps

    @property
    def pkts_per_rtt(self) -> int:
        return max(1, int(self.fabric.rtt_s / self.pkt_time_s))

    @property
    def round_capacity_pkts(self) -> int:
        """Packets deliverable per RTT round: buffer plus line rate."""
        if self.fabric.buffer_pkts is None:
            raise ValueError("round capacity is undefined on an ideal (infinite) port")
        return self.fabric.buffer_pkts + self.pkts_per_rtt

    def safe_fanin(self, cost: float = 0.0) -> int:
        """Most *synchronized* flows this port absorbs without an RTO risk.

        :attr:`round_capacity_pkts` packets clear the port per RTT round,
        but only the buffered share of that capacity is admission
        headroom for simultaneous arrivals: flows that inject in the
        same instant (a collective shuffle, a striped fan-in) see none
        of the round's line-rate drain yet, so every flow's initial
        window must fit the buffer *at once* or some flow loses its
        entire window — and a full-window loss has no dup-acks to
        trigger fast retransmit, so that flow sits out a (min-)RTO.

        ``cost`` (e.g. a :class:`FabricFeedback` EWMA congestion cost
        for this port) discounts the headroom: a port already carrying
        background traffic has ``buffer/(1+cost)`` free packets to
        offer a new synchronized burst.

        Always >= 1; unbounded (``2**30``) on an ideal port.
        """
        if self.fabric.buffer_pkts is None:
            return 1 << 30
        buffered = self.round_capacity_pkts - self.pkts_per_rtt  # == buffer_pkts
        eff = buffered / (1.0 + max(0.0, cost))
        return max(1, int(eff) // self.fabric.init_cwnd)

    # -- buffer accounting --------------------------------------------
    def free_pkts(self) -> int:
        if self.down:
            # blacked out: admits nothing, so windowed flows see a
            # full-window loss and sit out RTOs until the port restores
            return 0
        if self.fabric.buffer_pkts is None:
            return 1 << 62
        return max(0, self.fabric.buffer_pkts - self.occupancy_pkts)

    def set_down(self, down: bool) -> None:
        """Blackout (or restore) the port; counted once per transition."""
        if down and not self.down:
            self.record_blackout(1)
        self.down = down

    def admit(self, pkts: int) -> None:
        self.occupancy_pkts += pkts
        if self._g_occupancy is not None:
            self._g_occupancy.set(self.occupancy_pkts)
            self._h_occupancy.observe(self.occupancy_pkts)

    def drain(self, pkts: int) -> None:
        self.occupancy_pkts -= pkts
        if self._g_occupancy is not None:
            self._g_occupancy.set(self.occupancy_pkts)

    # -- event accounting ---------------------------------------------
    def record_drops(self, pkts: int) -> None:
        self.total_drops_pkts += pkts
        if self._c_drops is not None and pkts:
            self._c_drops.inc(pkts)

    def record_timeouts(self, n: int = 1) -> None:
        self.total_timeouts += n
        if self._c_timeouts is not None and n:
            self._c_timeouts.inc(n)

    def record_retransmit(self, n: int = 1) -> None:
        self.total_retransmits += n
        if self._c_retransmits is not None and n:
            self._c_retransmits.inc(n)

    def record_bytes(self, nbytes: int) -> None:
        self.total_bytes += nbytes
        if self._c_bytes is not None and nbytes:
            self._c_bytes.inc(nbytes)

    def record_blackout(self, n: int = 1) -> None:
        self.total_blackouts += n
        if self._c_blackouts is not None and n:
            self._c_blackouts.inc(n)

    def stats(self) -> dict:
        """The authoritative always-on totals, as one sorted-key dict."""
        return {
            "port": self.name,
            "drops_pkts": self.total_drops_pkts,
            "timeouts": self.total_timeouts,
            "retransmits": self.total_retransmits,
            "bytes": self.total_bytes,
            "blackouts": self.total_blackouts,
            "occupancy_pkts": self.occupancy_pkts,
            "down": self.down,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = self.fabric.buffer_pkts
        return f"SwitchPort({self.name}, {self.occupancy_pkts}/{cap if cap is not None else '∞'} pkts)"


class FabricFeedback:
    """EWMA-smoothed per-server congestion costs read back from the obs registry.

    This is the sensing half of congestion-aware placement
    (:class:`repro.placement.congestion.CongestionAwarePlacement`): it
    snapshots the per-port metrics :class:`SwitchPort` exports
    (``net.fabric.occupancy_pkts`` gauges, ``net.fabric.drops_pkts`` /
    ``timeouts`` / ``bytes`` counters) at a configurable interval and
    folds them into one exponentially-weighted cost per server port::

        instant = occupancy / buffer_norm + drop_weight * new_drops
        ewma    = instant + (ewma - instant) * (1 - alpha) ** elapsed_intervals

    so placement reacts to *sustained* hot ports, not transient bursts.

    Fault tolerance: a port whose metrics go **stale** (no counter or
    gauge movement for ``stale_after_s`` — e.g. a stalled switch has
    stopped exporting) contributes an instant cost of zero, so its EWMA
    decays and consumers fall back to their baseline behaviour instead
    of steering forever on frozen telemetry.  A missing registry
    (``metrics=None``) reports all-zero costs and never raises —
    feedback degrades, placement must not wedge.

    ``now_fn`` supplies the sampling clock (typically ``lambda:
    sim.now``); without one every :meth:`costs` call advances an
    internal tick by one interval, i.e. refreshes unconditionally.

    **Hierarchy.**  On a leaf/spine fabric a flow into server ``s``
    also crosses the rack's spine downlink, so ``uplink_names`` maps
    each server to the extra hop's port label (e.g. ``"leaf1.down"``,
    from :meth:`Topology.uplink_name_for_server`).  Each distinct hop
    port gets its own EWMA from the same per-port metrics, and
    :meth:`costs` reports ``edge + hop`` per server — congestion on an
    oversubscribed uplink surfaces on *every* server behind it, which
    is exactly what rack-aware placement needs to steer around a hot
    rack.  The per-edge-port metric label sets are untouched.
    """

    #: refresh steps folded per call are capped: past this many elapsed
    #: intervals the EWMA has converged to the instant reading anyway.
    MAX_STEPS = 64

    def __init__(
        self,
        metrics,
        n_servers: int,
        *,
        now_fn=None,
        interval_s: float = 1e-3,
        alpha: float = 0.5,
        drop_weight: float = 0.1,
        buffer_norm: float = 64.0,
        stale_after_s: float = 5e-3,
        port_prefix: str = "server",
        uplink_names: Optional[list[Optional[str]]] = None,
    ) -> None:
        if n_servers < 1:
            raise ValueError("need at least one server port")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if interval_s <= 0 or stale_after_s <= 0:
            raise ValueError("interval_s and stale_after_s must be > 0")
        if uplink_names is not None and len(uplink_names) != n_servers:
            raise ValueError(
                f"uplink_names must have one entry per server "
                f"({n_servers}), got {len(uplink_names)}"
            )
        self.metrics = metrics
        self.n_servers = n_servers
        self.now_fn = now_fn
        self.interval_s = interval_s
        self.alpha = alpha
        self.drop_weight = drop_weight
        self.buffer_norm = max(1.0, buffer_norm)
        self.stale_after_s = stale_after_s
        self.port_prefix = port_prefix
        self.uplink_names = uplink_names
        self._ewma = [0.0] * n_servers
        self._last_t: Optional[float] = None
        self._tick = 0.0                      # internal clock when now_fn is None
        self._last_sig: list[Optional[tuple]] = [None] * n_servers
        self._sig_changed_t = [0.0] * n_servers
        self.stale = [False] * n_servers
        # one EWMA per *distinct* hop port, shared by the servers behind it
        self._hops: list[str] = sorted(
            {u for u in (uplink_names or []) if u is not None}
        )
        self._hop_ewma = {u: 0.0 for u in self._hops}
        self._hop_last_sig: dict[str, Optional[tuple]] = {u: None for u in self._hops}

    def _signature(self, server: int) -> tuple:
        return self._port_signature(f"{self.port_prefix}{server}")

    def _port_signature(self, port: str) -> tuple:
        m = self.metrics
        return (
            m.gauge("net.fabric.occupancy_pkts", port=port).value,
            m.counter("net.fabric.drops_pkts", port=port).value,
            m.counter("net.fabric.timeouts", port=port).value,
            m.counter("net.fabric.bytes", port=port).value,
        )

    def refresh(self, now: Optional[float] = None) -> None:
        """Fold a snapshot into the EWMA if at least one interval elapsed."""
        if self.metrics is None:
            return
        if now is None:
            now = self.now_fn() if self.now_fn is not None else self._tick
        if self._last_t is None:
            # first observation: seed the EWMA with the instant reading
            self._last_t = now
            for s in range(self.n_servers):
                sig = self._signature(s)
                self._last_sig[s] = sig
                self._sig_changed_t[s] = now
                self._ewma[s] = self._instant(s, sig, drops_delta=0.0)
            for u in self._hops:
                sig = self._port_signature(u)
                self._hop_last_sig[u] = sig
                self._hop_ewma[u] = self._instant_from(sig, drops_delta=0.0)
            return
        elapsed = now - self._last_t
        if elapsed < self.interval_s:
            return
        steps = min(self.MAX_STEPS, int(elapsed / self.interval_s))
        decay = (1.0 - self.alpha) ** steps
        for s in range(self.n_servers):
            sig = self._signature(s)
            prev = self._last_sig[s]
            if sig != prev:
                self._sig_changed_t[s] = now
            self.stale[s] = (now - self._sig_changed_t[s]) >= self.stale_after_s
            drops_delta = sig[1] - prev[1] if prev is not None else 0.0
            instant = 0.0 if self.stale[s] else self._instant(s, sig, drops_delta)
            self._ewma[s] = instant + (self._ewma[s] - instant) * decay
            self._last_sig[s] = sig
        for u in self._hops:
            sig = self._port_signature(u)
            prev = self._hop_last_sig[u]
            drops_delta = sig[1] - prev[1] if prev is not None else 0.0
            instant = self._instant_from(sig, drops_delta)
            self._hop_ewma[u] = instant + (self._hop_ewma[u] - instant) * decay
            self._hop_last_sig[u] = sig
        self._last_t = now

    def _instant(self, server: int, sig: tuple, drops_delta: float) -> float:
        return self._instant_from(sig, drops_delta)

    def _instant_from(self, sig: tuple, drops_delta: float) -> float:
        occupancy = sig[0]
        return occupancy / self.buffer_norm + self.drop_weight * max(0.0, drops_delta)

    def hop_costs(self) -> dict[str, float]:
        """Current per-hop (uplink/downlink) EWMA costs, by port label."""
        return dict(self._hop_ewma)

    def costs(self, now: Optional[float] = None) -> list[float]:
        """Current per-server congestion costs (refreshing first).

        With ``uplink_names`` each server's cost is its edge-port EWMA
        *plus* its rack hop's EWMA, so uplink congestion is charged to
        every server behind that uplink.
        """
        if self.metrics is None:
            return [0.0] * self.n_servers
        if now is None and self.now_fn is None:
            self._tick += self.interval_s
        self.refresh(now)
        if self.uplink_names is None:
            return list(self._ewma)
        return [
            e + (self._hop_ewma[u] if u is not None else 0.0)
            for e, u in zip(self._ewma, self.uplink_names)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{c:.3f}" for c in self._ewma)
        return f"FabricFeedback([{inner}])"


class Topology:
    """Client NICs → switch → server NICs, driven as simulation processes.

    The **ideal** configuration (``fabric.ideal``) reproduces the
    historical inline arithmetic exactly:

    * :meth:`client_xfer` — acquire the client's host NIC, hold it for
      ``client_link.transfer_s(nbytes)``;
    * :meth:`request_cost_s` — scalar ``rpc_latency + server-link
      serialization`` for a server to absorb/emit one request.

    With finite ``fabric.buffer_pkts``, transfers instead route through
    per-destination :class:`SwitchPort` objects via :meth:`to_server`
    (client request payload converging on a storage server) and
    :meth:`to_client` (striped read replies converging on a client —
    the incast path), with windowed injection, tail drops, fast
    retransmit, and full-window-loss RTOs.

    Parameters
    ----------
    sim: the :class:`~repro.sim.Simulator` that drives all transfers.
    n_servers: storage-server switch ports to build (one per server).
    client_link: the per-client host link (bandwidth in B/s, latency in
        seconds); client NICs and client-side switch ports use it.
    server_link: the per-server link, same units.
    rpc_latency_s: software round-trip overhead charged per request by
        :meth:`request_cost_s`, in seconds (default 0.0).
    fabric: the shared :class:`FabricParams` congestion knobs (default
        :data:`IDEAL_FABRIC` — infinite buffers, no contention).
    name: label prefix for observability output (default ``"fabric"``).
    """

    def __init__(
        self,
        sim: Simulator,
        n_servers: int,
        client_link: Link,
        server_link: Link,
        rpc_latency_s: float = 0.0,
        fabric: FabricParams = IDEAL_FABRIC,
        name: str = "fabric",
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.client_link = client_link
        self.server_link = server_link
        self.rpc_latency_s = rpc_latency_s
        self.name = name
        self.obs = getattr(sim, "obs", None)
        self.rng = np.random.default_rng(fabric.seed)
        self._client_nics: dict[int, Resource] = {}
        self._client_ports: dict[int, SwitchPort] = {}
        self._named_ports: dict[str, SwitchPort] = {}
        self.n_servers = n_servers
        self.server_ports = [
            SwitchPort(server_link, fabric, sim=sim, obs=self.obs, name=f"server{i}")
            for i in range(n_servers)
        ]
        self._fluid_engine: Optional[FluidEngine] = (
            FluidEngine(sim, fabric) if fabric.fluid else None
        )
        self.leafspine = fabric.leafspine
        self.leaf_up: list[SwitchPort] = []
        self.leaf_down: list[SwitchPort] = []
        self._racks_down: set[int] = set()
        if self.leafspine is not None:
            ls = self.leafspine
            per_rack_edges = max(1, -(-n_servers // ls.n_racks))  # ceil
            uplink = Link(
                bandwidth_Bps=per_rack_edges * server_link.bandwidth_Bps
                / ls.oversubscription,
                latency_s=server_link.latency_s,
            )
            for r in range(ls.n_racks):
                self.leaf_up.append(SwitchPort(
                    uplink, fabric, sim=sim, obs=self.obs, name=f"leaf{r}.up"
                ))
                self.leaf_down.append(SwitchPort(
                    uplink, fabric, sim=sim, obs=self.obs, name=f"leaf{r}.down"
                ))

    # -- rack geometry (leaf/spine only; flat answers are degenerate) --
    @property
    def n_racks(self) -> int:
        """Rack count; 1 under the flat topology."""
        return self.leafspine.n_racks if self.leafspine is not None else 1

    def server_rack(self, server: int) -> int:
        """Rack of a server: contiguous blocks (0 under flat)."""
        if self.leafspine is None:
            return 0
        return server * self.leafspine.n_racks // max(1, self.n_servers)

    def client_rack(self, client: int) -> int:
        """Rack of a client: round-robin, or blocks of ``clients_per_rack``."""
        if self.leafspine is None:
            return 0
        ls = self.leafspine
        if ls.clients_per_rack is not None:
            return (client // ls.clients_per_rack) % ls.n_racks
        return client % ls.n_racks

    def client_for_rack(self, rack: int, k: int = 0) -> int:
        """The ``k``-th client id living in ``rack`` (inverse of
        :meth:`client_rack`); identity-ish under flat (returns ``k``)."""
        if self.leafspine is None:
            return k
        ls = self.leafspine
        if ls.clients_per_rack is not None:
            return (rack % ls.n_racks) * ls.clients_per_rack + k
        return (rack % ls.n_racks) + k * ls.n_racks

    def uplink_name_for_server(self, server: int) -> Optional[str]:
        """The rack-downlink port label a flow into ``server`` crosses
        when it originates outside the rack; ``None`` under flat."""
        if self.leafspine is None:
            return None
        return f"leaf{self.server_rack(server)}.down"

    # -- endpoints -----------------------------------------------------
    def client_nic(self, client: int) -> Resource:
        nic = self._client_nics.get(client)
        if nic is None:
            nic = Resource(self.sim, capacity=1, name=f"client{client}.nic")
            self._client_nics[client] = nic
        return nic

    def client_port(self, client: int) -> SwitchPort:
        port = self._client_ports.get(client)
        if port is None:
            port = SwitchPort(
                self.client_link, self.fabric, sim=self.sim, obs=self.obs,
                name=f"client{client}",
            )
            if self.client_rack(client) in self._racks_down:
                port.set_down(True)
            self._client_ports[client] = port
        return port

    def named_port(self, name: str, link: Link) -> SwitchPort:
        """A memoized extra port (e.g. an NFS server's single nfsd funnel)."""
        port = self._named_ports.get(name)
        if port is None:
            port = SwitchPort(
                link, self.fabric, sim=self.sim, obs=self.obs, name=name
            )
            self._named_ports[name] = port
        return port

    # -- fault injection ----------------------------------------------
    def set_port_down(self, server: int, down: bool) -> None:
        """Blackout/restore a *server* switch port (fault injection).

        Only meaningful under a finite-buffer fabric: the windowed
        process path finds ``free_pkts() == 0`` and RTO-loops until the
        port restores.  Under the ideal fabric transfers never touch the
        switch ports, so a blackout records the transition (metrics)
        but costs nothing — crash the server itself to model
        unreachability there.

        The hierarchy-aware sibling is :meth:`set_leaf_down`, which
        takes a whole rack's leaf switch (uplink, downlink, and every
        edge port behind it) down in one transition.

        Fluid mode reacts at flow-rate granularity instead: a down port
        contributes zero capacity, so flows crossing it stall at rate 0
        until the restore recomputes the shares.
        """
        self.server_ports[server].set_down(down)
        if self._fluid_engine is not None:
            self._fluid_engine.mark_dirty()

    def set_leaf_down(self, rack: int, down: bool) -> None:
        """Blackout/restore a whole leaf switch (fault injection).

        Downs the rack's spine uplink and downlink plus every edge port
        behind the leaf — all the rack's server ports and any client
        ports (including ones lazily created while the leaf is down).
        Requires a leaf/spine topology.
        """
        if self.leafspine is None:
            raise ValueError("set_leaf_down requires a leaf/spine topology")
        if not 0 <= rack < self.leafspine.n_racks:
            raise ValueError(f"rack {rack} out of range [0, {self.leafspine.n_racks})")
        if down:
            self._racks_down.add(rack)
        else:
            self._racks_down.discard(rack)
        self.leaf_up[rack].set_down(down)
        self.leaf_down[rack].set_down(down)
        for s in range(self.n_servers):
            if self.server_rack(s) == rack:
                self.server_ports[s].set_down(down)
        for c, port in self._client_ports.items():
            if self.client_rack(c) == rack:
                port.set_down(down)
        if self._fluid_engine is not None:
            self._fluid_engine.mark_dirty()

    # -- ideal-path arithmetic ----------------------------------------
    def request_cost_s(self, nbytes: int) -> float:
        """Uncontended server-side cost: RPC overhead + link serialization."""
        return self.rpc_latency_s + self.server_link.transfer_s(nbytes)

    # -- simulation processes -----------------------------------------
    def client_xfer(self, client: int, nbytes: int):
        """Serialize ``nbytes`` onto the client's host NIC (both modes)."""
        nic = self.client_nic(client)
        grant = yield Acquire(nic)
        yield Timeout(self.client_link.transfer_s(nbytes))
        nic.release(grant)

    def _route(self, dst_port: SwitchPort, dst_rack: int, src_rack: Optional[int]) -> list[SwitchPort]:
        """Hops a flow crosses to reach ``dst_port``.

        Flat topology, unknown source, or same-rack: just the
        destination edge port (exactly the historical single-hop path).
        Cross-rack: source leaf uplink → destination leaf downlink →
        destination edge port.
        """
        if self.leafspine is None or src_rack is None or src_rack == dst_rack:
            return [dst_port]
        return [self.leaf_up[src_rack], self.leaf_down[dst_rack], dst_port]

    def to_server(
        self, server: int, nbytes: int, parent_span=None, cwnd_cap=None, ctx=None,
        src_client: Optional[int] = None,
    ):
        """Move a request payload through the server's switch output port.

        ``src_client`` names the originating client so leaf/spine
        fabrics can route cross-rack flows over the spine; omitted (or
        under a flat topology) the flow crosses only the destination
        edge port — the historical behaviour, bit-identical.
        """
        src_rack = None if src_client is None else self.client_rack(src_client)
        path = self._route(
            self.server_ports[server], self.server_rack(server), src_rack
        )
        yield from self._xfer(path, nbytes, parent_span, cwnd_cap, ctx)

    def to_client(
        self, client: int, nbytes: int, parent_span=None, cwnd_cap=None, ctx=None,
        src_server: Optional[int] = None,
    ):
        """Move a reply through the client's switch output port (incast path).

        ``src_server`` names the replying server for leaf/spine routing,
        same contract as :meth:`to_server`'s ``src_client``.
        """
        src_rack = None if src_server is None else self.server_rack(src_server)
        path = self._route(self.client_port(client), self.client_rack(client), src_rack)
        yield from self._xfer(path, nbytes, parent_span, cwnd_cap, ctx)

    def server_to_server(
        self, src_server: int, dst_server: int, nbytes: int,
        parent_span=None, cwnd_cap=None, ctx=None,
    ):
        """Move a payload from one server to another (rebuild traffic).

        Scrub/rebuild share collection uses this path: a replacement
        server pulls surviving shares from their homes.  Same-rack (or
        flat-topology) transfers cross only the destination edge port;
        cross-rack transfers ride the source leaf's spine uplink and the
        destination leaf's downlink — so a rebuild storm contends with
        foreground traffic exactly where real ones do.
        """
        path = self._route(
            self.server_ports[dst_server],
            self.server_rack(dst_server),
            self.server_rack(src_server),
        )
        yield from self._xfer(path, nbytes, parent_span, cwnd_cap, ctx)

    def to_port(self, port: SwitchPort, nbytes: int, parent_span=None, cwnd_cap=None, ctx=None):
        """Move a payload through one explicit port (e.g. a named funnel)."""
        yield from self._xfer([port], nbytes, parent_span, cwnd_cap, ctx)

    def _xfer(self, path: list[SwitchPort], nbytes: int, parent_span=None, cwnd_cap=None, ctx=None):
        """Mode dispatch: the exact windowed engine or the fluid engine."""
        if self._fluid_engine is not None:
            return self._fluid(path, nbytes, parent_span, cwnd_cap, ctx)
        return self._windowed(path, nbytes, parent_span, cwnd_cap, ctx)

    def fluid_stats(self) -> Optional[dict]:
        """Fluid-engine totals (epochs, probes, stalls); None in exact mode."""
        return self._fluid_engine.stats() if self._fluid_engine is not None else None

    def _fluid(self, path: list[SwitchPort], nbytes: int, parent_span=None, cwnd_cap=None, ctx=None):
        """One flow through the fluid engine (``FabricParams.mode="fluid"``).

        The engine time-shares each hop's line rate among concurrent
        flows (max-min fair) and stall-probes synchronized bursts
        against the destination buffer; this generator then charges the
        closed-form *latency surcharge* — the ack rounds of the exact
        window ramp plus store-and-forward serialization on the
        non-bottleneck hops — so an uncontended fluid flow finishes at
        exactly the uncontended exact-mode instant (see
        :mod:`repro.net.fluid`).  ``cwnd_cap`` tightens the round count
        like it tightens exact-mode window growth; ``ctx`` receives
        drop/RTO attribution from the stall probe.
        """
        if nbytes <= 0:
            return
        fab = self.fabric
        span = None
        if self.obs is not None:
            attrs = ctx.span_attrs() if ctx is not None else {}
            span = self.obs.tracer.start(
                "fabric.xfer", parent=parent_span, at=self.sim.now,
                port=path[-1].name, nbytes=nbytes, hops=len(path), **attrs,
            )
        max_w = fab.max_cwnd if cwnd_cap is None else max(1, min(fab.max_cwnd, cwnd_cap))
        npkts = -(-nbytes // fab.pkt_bytes)  # ceil
        t0 = self.sim.now
        ev = self._fluid_engine.start_flow(path, npkts, max_w, ctx)
        yield ev
        tail_s = self._fluid_engine.pop_tail_s(ev)
        self.sim.recycle_event(ev)
        # The uncontended exact-mode finish instant is a latency *floor*:
        # every packet serializes at every store-and-forward hop and every
        # window round costs one RTT ack.  The engine drain already spent
        # bottleneck serialization (plus any queueing/stall time); under
        # contention those ack gaps overlap other flows' transmissions,
        # so only the part of the floor the drain hasn't covered is
        # charged — uncontended this is exactly rounds*rtt + the
        # non-bottleneck hop serialization, making fluid == exact there.
        pkt_times = [p.pkt_time_s for p in path]
        rounds = windowed_rounds(npkts, min(fab.init_cwnd, max_w), max_w)
        t_floor = t0 + npkts * sum(pkt_times) + rounds * fab.rtt_s
        # The exact engine ends *every* round — including the last — with
        # an RTT ack wait.  A clean synchronized cohort stays in lockstep,
        # so each round's RTT goes unoverlapped except for what the other
        # members' transmissions cover (the engine precomputed that
        # gap-sum, see ``lockstep_tail_s``); a lossy/desynchronized flow
        # keeps only the final RTT.  Uncontended the solo floor already
        # contains the full ack tail (rounds >= 1), so this only bites
        # when contention pushed the drain past the solo floor.
        t_floor = max(t_floor, self.sim.now + tail_s)
        if t_floor > self.sim.now:
            yield Timeout(t_floor - self.sim.now)
        for p in path:
            p.record_bytes(nbytes)
        if span is not None:
            span.finish(at=self.sim.now)

    def _windowed(self, path: list[SwitchPort], nbytes: int, parent_span=None, cwnd_cap=None, ctx=None):
        """One flow's windowed injection through a *path* of finite buffers.

        Each round: inject up to ``cwnd`` packets.  Admission is gated
        by the tightest hop on the path (``min`` of every hop's free
        buffer); what fits is admitted at **every** hop in order and
        drained by each hop's link (a shared capacity-1 resource);
        overflow is tail-dropped, attributed to the bottleneck hop.
        Partial loss halves the window (fast retransmit); a
        *full*-window loss has nothing in flight to trigger it, so the
        flow sits out a (min-)RTO.  One RTT elapses per round for the
        acknowledgement regardless of hop count (the hops pipeline).
        A single-element path is operation-for-operation the historical
        single-port behaviour — goldens pin it bit-identical.

        ``cwnd_cap`` (packets) clamps window growth below the fabric's
        ``max_cwnd`` — application-level pacing.  A cooperating fan-in
        (the collective shuffle) caps each flow at its share of the port
        buffer so the concurrent windows fit the buffer *at once*; TCP
        left alone grows past it and tail-drops.

        ``ctx`` (a :class:`repro.obs.RequestContext`) attributes the
        flow's damage to its request: drops and RTOs bump the context's
        counters in-line, and — with a bundle active — per-tenant
        ``net.fabric.tenant.*{tenant=}`` counters.  Attribution never
        changes simulated time.
        """
        if nbytes <= 0:
            return
        fab = self.fabric
        span = None
        t_drops = t_rtos = None
        if self.obs is not None:
            attrs = ctx.span_attrs() if ctx is not None else {}
            span = self.obs.tracer.start(
                "fabric.xfer", parent=parent_span, at=self.sim.now,
                port=path[-1].name, nbytes=nbytes, hops=len(path), **attrs,
            )
            if ctx is not None:
                m = self.obs.metrics
                t_drops = m.counter("net.fabric.tenant.drops_pkts", tenant=ctx.tenant)
                t_rtos = m.counter("net.fabric.tenant.rtos", tenant=ctx.tenant)
        max_w = fab.max_cwnd if cwnd_cap is None else max(1, min(fab.max_cwnd, cwnd_cap))
        total = -(-nbytes // fab.pkt_bytes)  # ceil
        cwnd = min(fab.init_cwnd, max_w)
        done = 0
        while done < total:
            want = min(cwnd, total - done)
            # admission is gated by the tightest hop; ties go to the
            # earliest hop so drop attribution is deterministic
            bottleneck = path[0]
            free = bottleneck.free_pkts()
            for p in path[1:]:
                f = p.free_pkts()
                if f < free:
                    free, bottleneck = f, p
            admit = min(want, free)
            if admit <= 0:
                # full-window loss: no ack, no dup-acks — wait out the RTO
                bottleneck.record_drops(want)
                bottleneck.record_timeouts(1)
                if ctx is not None:
                    ctx.drops_pkts += want
                    ctx.rtos += 1
                    if t_drops is not None:
                        t_drops.inc(want)
                        t_rtos.inc()
                yield Timeout(fab.rto_s(self.rng))
                cwnd = min(fab.init_cwnd, max_w)
                continue
            if admit < want:
                # partial loss: triple-dup-ack fast retransmit, window halves
                bottleneck.record_drops(want - admit)
                bottleneck.record_retransmit(1)
                if ctx is not None:
                    ctx.drops_pkts += want - admit
                    if t_drops is not None:
                        t_drops.inc(want - admit)
                cwnd = max(1, cwnd // 2)
            else:
                cwnd = min(cwnd + 1, max_w)
            for p in path:
                p.admit(admit)
                grant = yield Acquire(p.res)
                yield Timeout(admit * p.pkt_time_s)
                p.res.release(grant)
                p.drain(admit)
            done += admit
            yield Timeout(fab.rtt_s)  # the round's acknowledgement
        for p in path:
            p.record_bytes(nbytes)
        if span is not None:
            span.finish(at=self.sim.now)


# -- the round-based synchronized fan-in engine (incast) ---------------

@dataclass
class FaninResult:
    """Aggregate outcome of a synchronized fan-in run."""

    n_flows: int
    total_bytes: int
    elapsed_s: float
    timeouts: int
    repeat_timeouts: int   # timeouts of flows that already timed out within
                           # the same block — retransmission-storm collisions,
                           # the thing RTO jitter removes
    n_blocks: int

    @property
    def goodput_Bps(self) -> float:
        return self.total_bytes / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def block_time_s(self) -> float:
        return self.elapsed_s / self.n_blocks if self.n_blocks else 0.0


def synchronized_fanin(
    link: Link,
    fabric: FabricParams,
    n_flows: int,
    sru_bytes: int,
    rng: np.random.Generator,
    n_blocks: int = 20,
    port: Optional[SwitchPort] = None,
) -> FaninResult:
    """Fetch ``n_blocks`` striped blocks from ``n_flows`` synchronized senders.

    The round-based model (one round = one RTT) from the incast study:
    each active flow injects its window; injected packets beyond the
    port's service+buffer capacity for the round are dropped uniformly
    at random; full-window loss → timeout with the configured minimum
    RTO (optionally jittered); partial loss → window halves (fast
    retransmit).  Coarse, but it contains exactly the three mechanisms
    the published fix manipulates.

    ``port`` (optional, simulator-less) receives per-port drop/timeout
    accounting so the run shows up in ``repro.obs`` job reports.
    """
    if n_flows < 1:
        raise ValueError("need at least one flow")
    if fabric.buffer_pkts is None:
        raise ValueError("synchronized_fanin needs a finite buffer_pkts")
    if port is None:
        port = SwitchPort(link, fabric, name=fabric.name)
    pkt_time = port.pkt_time_s
    sru_pkts = max(1, sru_bytes // fabric.pkt_bytes)
    cap = port.round_capacity_pkts  # deliverable per round
    total_bytes = 0
    t = 0.0
    timeouts = 0
    repeat_timeouts = 0
    for _ in range(n_blocks):
        remaining = np.full(n_flows, sru_pkts, dtype=np.int64)
        cwnd = np.full(n_flows, fabric.init_cwnd, dtype=np.int64)
        wake = np.zeros(n_flows)  # timeout expiry per flow
        timed_out_before = np.zeros(n_flows, dtype=bool)
        while remaining.any():
            active = (remaining > 0) & (wake <= t)
            if not active.any():
                t = wake[remaining > 0].min()
                continue
            send = np.where(active, np.minimum(cwnd, remaining), 0)
            injected = int(send.sum())
            if injected <= cap:
                remaining -= send
                cwnd[active] = np.minimum(cwnd[active] + 1, fabric.max_cwnd)
                t += max(fabric.rtt_s, injected * pkt_time)
                continue
            # overflow: drop (injected - cap) packets uniformly at random
            drops = injected - cap
            flat = np.repeat(np.arange(n_flows), send)
            dropped_idx = rng.choice(injected, size=drops, replace=False)
            lost = np.bincount(flat[dropped_idx], minlength=n_flows)
            delivered = send - lost
            remaining -= delivered
            port.record_drops(drops)
            full_loss = active & (send > 0) & (delivered == 0) & (remaining > 0)
            partial = active & (delivered > 0)
            cwnd[partial] = np.maximum(cwnd[partial] // 2, 1)
            port.record_retransmit(int(partial.sum()))
            n_to = int(full_loss.sum())
            if n_to:
                timeouts += n_to
                repeat_timeouts += int((full_loss & timed_out_before).sum())
                timed_out_before |= full_loss
                base = max(fabric.min_rto_s, 2.0 * fabric.rtt_s)
                if fabric.rto_jitter:
                    rto = base * (0.5 + rng.random(n_to))
                else:
                    rto = np.full(n_to, base)
                wake[full_loss] = t + rto
                cwnd[full_loss] = fabric.init_cwnd
                port.record_timeouts(n_to)
            t += max(fabric.rtt_s, cap * pkt_time)
        total_bytes += n_flows * sru_pkts * fabric.pkt_bytes
    port.record_bytes(total_bytes)
    return FaninResult(
        n_flows=n_flows,
        total_bytes=total_bytes,
        elapsed_s=t,
        timeouts=timeouts,
        repeat_timeouts=repeat_timeouts,
        n_blocks=n_blocks,
    )
