"""TCP incast: synchronized reads collapse goodput; low min-RTO fixes it.

Mechanism (Phanishayee et al., FAST'08; Vasudevan et al., SIGCOMM'09, both
PDSI work): a client requests a striped block from N servers at once; all
N responses converge on one switch output port whose buffer overflows.  A
server that loses its *entire* window has nothing in flight to trigger
fast retransmit, so it sits in a retransmission timeout — historically a
200 ms minimum, thousands of RTTs — while the barrier at the client keeps
the link idle.  Goodput falls by up to two orders of magnitude.  Lowering
the minimum RTO to ~1 ms (microsecond-granularity timers) restores
goodput; at thousands of servers the retransmissions themselves
resynchronize, so the RTO must also be *randomized* (Fig 9 right).

The model is round-based (one round = one RTT): each active flow injects
its window; injected packets beyond the port's service+buffer capacity are
dropped uniformly at random; full-window loss → timeout with the
configured minimum RTO (optionally jittered); partial loss → window halves
(fast retransmit).  Coarse, but it contains exactly the three mechanisms
the published fix manipulates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.obs import current as _current_obs


@dataclass(frozen=True)
class IncastConfig:
    """One synchronized-read experiment."""

    name: str = "1GE"
    link_Bps: float = 125e6           # 1 Gb/s
    rtt_s: float = 100e-6
    pkt_bytes: int = 1500
    buffer_pkts: int = 64             # switch output-port buffer
    sru_bytes: int = 32 * 1024        # per-server request unit
    min_rto_s: float = 0.2            # the historical 200 ms minimum
    rto_jitter: bool = False          # randomize the timeout
    init_cwnd: int = 2
    max_cwnd: int = 64

    @property
    def pkt_time_s(self) -> float:
        return self.pkt_bytes / self.link_Bps

    @property
    def pkts_per_rtt(self) -> int:
        return max(1, int(self.rtt_s / self.pkt_time_s))


#: The report's two testbeds.
ONE_GE = IncastConfig()
TEN_GE = IncastConfig(
    name="10GE",
    link_Bps=1250e6,
    rtt_s=40e-6,
    buffer_pkts=256,
    sru_bytes=64 * 1024,
)


@dataclass
class IncastResult:
    n_servers: int
    goodput_Bps: float
    timeouts: int
    block_time_s: float
    repeat_timeouts: int = 0  # timeouts of flows that already timed out
                              # within the same block: retransmission-storm
                              # collisions, the thing jitter removes

    @property
    def goodput_MBps(self) -> float:
        return self.goodput_Bps / 1e6

    def efficiency(self, cfg: IncastConfig) -> float:
        return self.goodput_Bps / cfg.link_Bps


def simulate_incast(
    cfg: IncastConfig,
    n_servers: int,
    rng: np.random.Generator,
    n_blocks: int = 20,
) -> IncastResult:
    """Fetch ``n_blocks`` striped blocks; returns aggregate goodput."""
    if n_servers < 1:
        raise ValueError("need at least one server")
    sru_pkts = max(1, cfg.sru_bytes // cfg.pkt_bytes)
    cap = cfg.buffer_pkts + cfg.pkts_per_rtt  # deliverable per round
    total_bytes = 0
    t = 0.0
    timeouts = 0
    repeat_timeouts = 0
    for _ in range(n_blocks):
        remaining = np.full(n_servers, sru_pkts, dtype=np.int64)
        cwnd = np.full(n_servers, cfg.init_cwnd, dtype=np.int64)
        wake = np.zeros(n_servers)  # timeout expiry per server
        timed_out_before = np.zeros(n_servers, dtype=bool)
        while remaining.any():
            active = (remaining > 0) & (wake <= t)
            if not active.any():
                t = wake[remaining > 0].min()
                continue
            send = np.where(active, np.minimum(cwnd, remaining), 0)
            injected = int(send.sum())
            if injected <= cap:
                remaining -= send
                cwnd[active] = np.minimum(cwnd[active] + 1, cfg.max_cwnd)
                t += max(cfg.rtt_s, injected * cfg.pkt_time_s)
                continue
            # overflow: drop (injected - cap) packets uniformly at random
            drops = injected - cap
            flat = np.repeat(np.arange(n_servers), send)
            dropped_idx = rng.choice(injected, size=drops, replace=False)
            lost = np.bincount(flat[dropped_idx], minlength=n_servers)
            delivered = send - lost
            remaining -= delivered
            full_loss = active & (send > 0) & (delivered == 0) & (remaining > 0)
            partial = active & (delivered > 0)
            cwnd[partial] = np.maximum(cwnd[partial] // 2, 1)
            n_to = int(full_loss.sum())
            if n_to:
                timeouts += n_to
                repeat_timeouts += int((full_loss & timed_out_before).sum())
                timed_out_before |= full_loss
                base = max(cfg.min_rto_s, 2.0 * cfg.rtt_s)
                if cfg.rto_jitter:
                    rto = base * (0.5 + rng.random(n_to))
                else:
                    rto = np.full(n_to, base)
                wake[full_loss] = t + rto
                cwnd[full_loss] = cfg.init_cwnd
            t += max(cfg.rtt_s, cap * cfg.pkt_time_s)
        total_bytes += n_servers * sru_pkts * cfg.pkt_bytes
    result = IncastResult(
        n_servers=n_servers,
        goodput_Bps=total_bytes / t if t > 0 else 0.0,
        timeouts=timeouts,
        block_time_s=t / n_blocks,
        repeat_timeouts=repeat_timeouts,
    )
    obs = _current_obs()
    if obs is not None:
        labels = {"config": cfg.name, "servers": n_servers}
        m = obs.metrics
        m.gauge("net.incast.goodput_Bps", **labels).set(result.goodput_Bps)
        m.counter("net.incast.timeouts", **labels).inc(timeouts)
        m.counter("net.incast.repeat_timeouts", **labels).inc(repeat_timeouts)
        m.counter("net.incast.bytes_read", **labels).inc(total_bytes)
    return result


def sweep_senders(
    cfg: IncastConfig,
    sender_counts: list[int],
    seed: int = 42,
    n_blocks: int = 20,
) -> list[IncastResult]:
    """Goodput vs sender count — one curve of Fig 9."""
    return [
        simulate_incast(cfg, n, np.random.default_rng(seed + n), n_blocks=n_blocks)
        for n in sender_counts
    ]
