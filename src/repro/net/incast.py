"""TCP incast: synchronized reads collapse goodput; low min-RTO fixes it.

Mechanism (Phanishayee et al., FAST'08; Vasudevan et al., SIGCOMM'09, both
PDSI work): a client requests a striped block from N servers at once; all
N responses converge on one switch output port whose buffer overflows.  A
server that loses its *entire* window has nothing in flight to trigger
fast retransmit, so it sits in a retransmission timeout — historically a
200 ms minimum, thousands of RTTs — while the barrier at the client keeps
the link idle.  Goodput falls by up to two orders of magnitude.  Lowering
the minimum RTO to ~1 ms (microsecond-granularity timers) restores
goodput; at thousands of servers the retransmissions themselves
resynchronize, so the RTO must also be *randomized* (Fig 9 right).

This module is now a thin configuration of the shared network fabric:
the round-based engine lives in :func:`repro.net.fabric.synchronized_fanin`
(one round = one RTT, uniform random drops past the port's service+buffer
capacity, full-window loss → minimum RTO, partial loss → fast retransmit),
and :class:`IncastConfig` just maps the published testbeds onto a
:class:`~repro.net.fabric.Link` + :class:`~repro.net.fabric.FabricParams`
pair.  All randomness flows through one explicit
``numpy.random.Generator`` seeded from the config, so two same-seed runs
produce identical :class:`IncastResult`\\ s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.net.fabric import FabricParams, Link, SwitchPort, synchronized_fanin
from repro.obs import current as _current_obs


@dataclass(frozen=True)
class IncastConfig:
    """One synchronized-read experiment."""

    name: str = "1GE"
    link_Bps: float = 125e6           # 1 Gb/s
    rtt_s: float = 100e-6
    pkt_bytes: int = 1500
    buffer_pkts: int = 64             # switch output-port buffer
    sru_bytes: int = 32 * 1024        # per-server request unit
    min_rto_s: float = 0.2            # the historical 200 ms minimum
    rto_jitter: bool = False          # randomize the timeout
    init_cwnd: int = 2
    max_cwnd: int = 64
    seed: int = 42                    # drop sampling + RTO jitter

    @property
    def pkt_time_s(self) -> float:
        return self.pkt_bytes / self.link_Bps

    @property
    def pkts_per_rtt(self) -> int:
        return max(1, int(self.rtt_s / self.pkt_time_s))

    # -- the fabric view ---------------------------------------------
    def as_link(self) -> Link:
        return Link(bandwidth_Bps=self.link_Bps)

    def as_fabric(self) -> FabricParams:
        return FabricParams(
            name=self.name,
            buffer_pkts=self.buffer_pkts,
            pkt_bytes=self.pkt_bytes,
            rtt_s=self.rtt_s,
            min_rto_s=self.min_rto_s,
            rto_jitter=self.rto_jitter,
            init_cwnd=self.init_cwnd,
            max_cwnd=self.max_cwnd,
            seed=self.seed,
        )


#: The report's two testbeds.
ONE_GE = IncastConfig()
TEN_GE = IncastConfig(
    name="10GE",
    link_Bps=1250e6,
    rtt_s=40e-6,
    buffer_pkts=256,
    sru_bytes=64 * 1024,
)


@dataclass
class IncastResult:
    n_servers: int
    goodput_Bps: float
    timeouts: int
    block_time_s: float
    repeat_timeouts: int = 0  # timeouts of flows that already timed out
                              # within the same block: retransmission-storm
                              # collisions, the thing jitter removes

    @property
    def goodput_MBps(self) -> float:
        return self.goodput_Bps / 1e6

    def efficiency(self, cfg: IncastConfig) -> float:
        return self.goodput_Bps / cfg.link_Bps


def simulate_incast(
    cfg: IncastConfig,
    n_servers: int,
    rng: Optional[np.random.Generator] = None,
    n_blocks: int = 20,
) -> IncastResult:
    """Fetch ``n_blocks`` striped blocks; returns aggregate goodput.

    ``rng`` defaults to ``numpy.random.default_rng(cfg.seed)`` — pass one
    explicitly to share a stream across calls.
    """
    if n_servers < 1:
        raise ValueError("need at least one server")
    if rng is None:
        rng = np.random.default_rng(cfg.seed)
    obs = _current_obs()
    port = SwitchPort(
        cfg.as_link(), cfg.as_fabric(), obs=obs,
        name=f"incast.{cfg.name}.{n_servers}",
    )
    fanin = synchronized_fanin(
        cfg.as_link(),
        cfg.as_fabric(),
        n_flows=n_servers,
        sru_bytes=cfg.sru_bytes,
        rng=rng,
        n_blocks=n_blocks,
        port=port,
    )
    result = IncastResult(
        n_servers=n_servers,
        goodput_Bps=fanin.goodput_Bps,
        timeouts=fanin.timeouts,
        block_time_s=fanin.block_time_s,
        repeat_timeouts=fanin.repeat_timeouts,
    )
    if obs is not None:
        labels = {"config": cfg.name, "servers": n_servers}
        m = obs.metrics
        m.gauge("net.incast.goodput_Bps", **labels).set(result.goodput_Bps)
        m.counter("net.incast.timeouts", **labels).inc(fanin.timeouts)
        m.counter("net.incast.repeat_timeouts", **labels).inc(fanin.repeat_timeouts)
        m.counter("net.incast.bytes_read", **labels).inc(fanin.total_bytes)
    return result


def sweep_senders(
    cfg: IncastConfig,
    sender_counts: list[int],
    seed: int = 42,
    n_blocks: int = 20,
) -> list[IncastResult]:
    """Goodput vs sender count — one curve of Fig 9."""
    return [
        simulate_incast(cfg, n, np.random.default_rng(seed + n), n_blocks=n_blocks)
        for n in sender_counts
    ]
