"""Cluster network models: the shared link/switch/topology fabric and the
TCP incast pathology (Fig 9), now a thin configuration of that fabric."""

from repro.net.fabric import (
    FabricParams,
    FaninResult,
    IDEAL_FABRIC,
    LeafSpineParams,
    Link,
    SwitchPort,
    Topology,
    fluid_shared_Bps,
    synchronized_fanin,
)
from repro.net.fluid import FluidEngine, burst_stalls, windowed_rounds
from repro.net.incast import (
    IncastConfig,
    IncastResult,
    ONE_GE,
    TEN_GE,
    simulate_incast,
    sweep_senders,
)

__all__ = [
    "FabricParams",
    "FaninResult",
    "FluidEngine",
    "IDEAL_FABRIC",
    "IncastConfig",
    "IncastResult",
    "LeafSpineParams",
    "Link",
    "ONE_GE",
    "SwitchPort",
    "TEN_GE",
    "Topology",
    "burst_stalls",
    "fluid_shared_Bps",
    "simulate_incast",
    "sweep_senders",
    "synchronized_fanin",
    "windowed_rounds",
]
