"""Cluster network models: the TCP incast pathology and its fix (Fig 9)."""

from repro.net.incast import (
    IncastConfig,
    IncastResult,
    ONE_GE,
    TEN_GE,
    simulate_incast,
    sweep_senders,
)

__all__ = [
    "IncastConfig",
    "IncastResult",
    "ONE_GE",
    "TEN_GE",
    "simulate_incast",
    "sweep_senders",
]
