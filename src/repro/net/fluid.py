"""Fluid drive mode for the shared fabric: tick-coalesced max-min rates.

The exact windowed engine (:meth:`repro.net.fabric.Topology._windowed`)
spends ~6 simulator events per congestion-window round per flow; a
million-client storm is simply not reachable that way.  This module is
the coarse companion mode (``FabricParams.mode="fluid"``): flows are
*rates*, not packets.  Each active flow holds a share of every
:class:`~repro.net.fabric.SwitchPort` on its hop path, shares are the
max-min fair allocation (progressive filling — the multi-bottleneck
generalization of :func:`repro.net.fabric.fluid_shared_Bps`), and the
simulator only wakes the engine when the allocation can change:

* an **arrival batch** — every flow that starts at the same simulated
  instant joins in one wakeup (``Simulator.call_at_coalesced``, so ten
  thousand synchronized RPCs cost one heap entry);
* a **completion batch** — flows whose remaining bytes drain within one
  tick of the earliest finisher complete together;
* a **stall expiry** or a **blackout/restore** transition.

Between wakeups rates are frozen, so each epoch costs one vectorized
pass over the active flows (numpy struct-of-arrays) instead of a heap
event per packet round.

Matching the exact mode
-----------------------
Two deterministic corrections keep fluid completion times inside the
documented tolerance of the exact engine (see ``docs/performance.md``):

1. **Latency surcharge** — an uncontended exact flow of ``N`` packets
   over hops with packet times ``pt_h`` finishes in ``N * sum(pt_h) +
   R(N) * rtt`` where :func:`windowed_rounds` gives the closed-form ack
   round count ``R(N)`` of the cwnd ramp.  The engine serves the flow's
   bytes at the bottleneck hop's line rate (``N * max(pt_h)``), and the
   caller charges the remainder — ``R(N)*rtt + N*(sum(pt_h) -
   max(pt_h))`` — as a plain timeout after the drain.  Uncontended
   fluid therefore equals uncontended exact *identically*, for any flow
   size, window cap, and hop count.
2. **Burst-stall probe** — max-min sharing alone cannot reproduce the
   incast cliff (a synchronized fan-in overflowing a port buffer causes
   *full-window* losses, and those flows sit out a 200 ms RTO — the
   x14 collapse).  :func:`burst_stalls` replays the windowed round
   dynamics for a synchronized arrival cohort in one vectorized loop
   (tail-drop in arrival order, halve on partial loss, RTO on
   full-window loss) and returns each flow's total RTO stall; stalled
   flows simply join the rate allocation late.  No per-packet events,
   same cliff.

Determinism: the engine consumes no randomness — tail-drop order is
arrival order, and all arithmetic is order-stable — so same-seed runs
are identical, like every other part of the kernel.
"""

from __future__ import annotations

import heapq
import math
from typing import Optional

import numpy as np

#: Rate assigned to a flow whose every hop has infinite bandwidth.
_INF_RATE = 1e30

#: A flow is complete when this many bytes (or fewer) remain — guards
#: float rounding in ``rem -= rate * dt`` against eta arithmetic.
_EPS_BYTES = 1e-6

#: Hard iteration cap for one burst probe (storms retry in generations;
#: each generation costs ~2 iterations, so this is far past any real
#: cohort).  Hitting it returns the stalls accumulated so far.
_PROBE_MAX_ITERS = 200_000

#: Cohorts up to this many flows are probed with the exact staggered
#: replay (:func:`_staggered_stalls` — a heap event per flow round);
#: larger cohorts use the vectorized generational model, whose cost is
#: O(rounds) numpy passes regardless of fan-in.
_STAGGER_MAX_FLOWS = 512


def windowed_rounds(npkts: int, init_cwnd: int, max_cwnd: int) -> int:
    """Ack rounds the exact windowed engine needs for an uncontended flow.

    The window ramps ``init_cwnd, init_cwnd+1, …, max_cwnd`` (one more
    packet per clean round) and then stays at ``max_cwnd``; each round
    costs one RTT for the acknowledgement.  Closed form, O(1).

    >>> windowed_rounds(1, 2, 64)
    1
    >>> windowed_rounds(44, 2, 64)     # 2+3+4+5+6+7+8+9 = 44
    8
    >>> windowed_rounds(2079, 2, 64)   # the full 2..64 ramp
    63
    >>> windowed_rounds(2080, 2, 64)   # one packet into steady state
    64
    >>> windowed_rounds(100, 4, 4)     # capped window: pure division
    25
    """
    if npkts <= 0:
        return 0
    ramp = max_cwnd - init_cwnd + 1  # rounds before the window caps
    b = 2 * init_cwnd - 1
    # smallest k with k*init + k(k-1)/2 >= npkts, via the quadratic root
    k = (math.isqrt(b * b + 8 * npkts) - b) // 2
    while k * init_cwnd + k * (k - 1) // 2 < npkts:
        k += 1
    while k > 1 and (k - 1) * init_cwnd + (k - 1) * (k - 2) // 2 >= npkts:
        k -= 1
    if k <= ramp:
        return k
    full_ramp = ramp * init_cwnd + ramp * (ramp - 1) // 2
    return ramp + -(-(npkts - full_ramp) // max_cwnd)


def lockstep_tail_s(
    npkts: int,
    init_cwnd: int,
    max_cwnd: int,
    n_flows: int,
    pkt_time_s: float,
    rtt_s: float,
) -> float:
    """Unoverlapped ack-gap time for one member of a *clean* cohort.

    ``n_flows`` synchronized flows that never lose a packet stay in
    lockstep in the exact engine: each round every flow transmits its
    window (serialized through the shared link) and then idles one RTT
    for the ack.  Between consecutive rounds the link sits idle for
    ``max(0, rtt - (n-1) * w_r * pkt_time)`` — the part of the ack gap
    the other members' round-``r`` transmissions don't cover — where
    ``w_r`` is the window actually sent (the additive ramp ``init,
    init+1, …, max_cwnd`` clamped to the packets remaining).  The RTT
    after the *final* burst has nothing following it, so it is always
    paid in full.

    Solo (``n_flows == 1``) this degenerates to the full
    ``windowed_rounds * rtt`` ack tail of an uncontended flow:

    >>> round(lockstep_tail_s(44, 2, 64, 1, 12e-6, 100e-6) * 1e6)
    800

    A single-round cohort keeps the whole terminal RTT; with peers
    transmitting during the inter-round gaps the rest shrinks and, once
    ``(n-1) * w * pkt_time`` exceeds the RTT, vanishes:

    >>> lockstep_tail_s(1, 2, 64, 7, 13.4e-6, 100e-6) == 100e-6
    True
    >>> round(lockstep_tail_s(44, 2, 64, 2, 12e-6, 100e-6) * 1e6)
    380
    >>> lockstep_tail_s(1000, 2, 64, 8, 12e-6, 100e-6) == 100e-6
    True
    """
    m = max(0, n_flows - 1) * pkt_time_s
    init = min(init_cwnd, max_cwnd)
    tail = 0.0
    sent, c = 0, init
    while sent < npkts:
        w = min(c, npkts - sent)
        sent += w
        if sent >= npkts:
            break  # final round: terminal RTT added below, no gap math
        gap = rtt_s - m * w
        if gap > 0.0:
            tail += gap
        if c == max_cwnd and gap <= 0.0:
            # steady state with saturated gaps: every remaining
            # non-final round is a full max_cwnd round contributing
            # nothing, and the final round adds no gap either
            break
        c = min(c + 1, max_cwnd)
    return tail + rtt_s


def _staggered_stalls(
    sizes_pkts: np.ndarray,
    cwnd_caps: np.ndarray,
    *,
    init_cwnd: int,
    cap_pkts: int,
    pkt_time_s: float,
    rtt_s: float,
    rto_s: float,
):
    """Exact replay of the windowed round mechanics for one cohort.

    Mirrors :meth:`Topology._windowed` on the cohort's shared
    destination hop: every flow's round *admits* against the buffer at
    its round-start instant, then queues FIFO for the capacity-1 link
    (``Acquire(p.res)``), transmits ``admit * pkt_time_s``, drains, and
    waits one RTT for the ack.  The serialization is what staggers an
    initially synchronized cohort — flow *k*'s second round starts
    ``k`` transmissions after flow 0's — and that stagger is exactly
    why a moderate fan-in survives (drains free buffer between the
    staggered admissions) while a wide one collapses.  One heap event
    per flow round; no per-packet events.
    """
    n = len(sizes_pkts)
    rem = [int(x) for x in sizes_pkts]
    caps = [int(c) for c in cwnd_caps]
    cwnd = [min(init_cwnd, c) for c in caps]
    stall = np.zeros(n)
    timeouts = np.zeros(n, dtype=np.int64)
    drops = np.zeros(n, dtype=np.int64)
    backlog = 0          # packets admitted but not yet drained
    busy_until = 0.0     # the link: capacity-1 FIFO resource
    seq = n
    # (time, prio, seq, payload): prio 0 = drain of `payload` packets,
    # prio 1 = admission attempt by flow `payload`.  Drains sort first
    # at a tied timestamp (transmission end frees the buffer before a
    # simultaneous round-start reads it); seq keeps ties deterministic
    # in arrival order.
    h: list = [(0.0, 1, k, k) for k in range(n)]
    for _ in range(_PROBE_MAX_ITERS):
        if not h:
            break
        t, prio, _, x = heapq.heappop(h)
        if prio == 0:
            backlog -= x
            continue
        k = x
        want = min(cwnd[k], rem[k])
        admit = min(want, cap_pkts - backlog)
        if admit <= 0:
            # full-window loss: nothing in flight, sit out the RTO
            drops[k] += want
            timeouts[k] += 1
            stall[k] += rto_s
            cwnd[k] = min(init_cwnd, caps[k])
            seq += 1
            heapq.heappush(h, (t + rto_s, 1, seq, k))
            continue
        if admit < want:
            drops[k] += want - admit
            cwnd[k] = max(1, cwnd[k] // 2)
        else:
            cwnd[k] = min(cwnd[k] + 1, caps[k])
        backlog += admit
        start = max(t, busy_until)
        busy_until = start + admit * pkt_time_s
        seq += 1
        heapq.heappush(h, (busy_until, 0, seq, admit))
        rem[k] -= admit
        if rem[k] > 0:
            seq += 1
            heapq.heappush(h, (busy_until + rtt_s, 1, seq, k))
    return stall, timeouts, drops


def burst_stalls(
    sizes_pkts: np.ndarray,
    cwnd_caps: np.ndarray,
    *,
    init_cwnd: int,
    cap_pkts: int,
    pkt_time_s: float,
    rtt_s: float,
    rto_s: float,
):
    """Replay a synchronized burst through the windowed round dynamics.

    ``sizes_pkts`` flows inject into one port at t=0.  Each round every
    awake flow offers ``min(cwnd, remaining)``; what the port buffer
    cannot hold is tail-dropped.  A flow admitting nothing suffers a
    full-window loss and sleeps one RTO (window back to ``init_cwnd``);
    a partial loss halves the window; a clean round grows it by one up
    to the flow's cap.

    Cohorts of at most :data:`_STAGGER_MAX_FLOWS` flows run the exact
    staggered replay (:func:`_staggered_stalls`): the capacity-1 link
    resource serializes transmissions, so round starts spread out and
    drains free buffer between the staggered admissions — a moderate
    fan-in (the x14 8-wide stripe) takes only partial losses while a
    wide one (16- and 32-wide) pushes its tail into full-window RTOs,
    matching the exact engine's cliff flow for flow.

    Wider cohorts (storms) fall back to a vectorized generational
    model: lockstep tail-drop in arrival order until the first RTO
    expiry, then largest-remainder proportional admission — every flow
    whose share rounds to at least one packet halves and continues, and
    only a fan-in genuinely wider than the round capacity pays further
    full-window generations.  Cost is O(rounds) numpy passes no matter
    how many flows.

    Returns ``(stall_s, timeouts, drops)`` per flow: total seconds spent
    waiting out RTOs, full-window-loss count, and packets not admitted.
    Deterministic — no randomness, arrival order decides the tail.

    >>> import numpy as np
    >>> s, t, d = burst_stalls(           # 16 x 44-pkt flows, 64-pkt buffer:
    ...     np.full(16, 44), np.full(16, 64),          # the x14 w=16 shape
    ...     init_cwnd=2, cap_pkts=71, pkt_time_s=13.4e-6,
    ...     rtt_s=100e-6, rto_s=0.2)
    >>> int((s > 0).sum()) > 0                  # the tail sits out an RTO
    True
    >>> s, t, d = burst_stalls(           # 8 x 88-pkt flows: partial losses
    ...     np.full(8, 88), np.full(8, 64),            # only, no collapse
    ...     init_cwnd=2, cap_pkts=71, pkt_time_s=13.4e-6,
    ...     rtt_s=100e-6, rto_s=0.2)
    >>> float(s.max())
    0.0
    """
    n = len(sizes_pkts)
    if n <= _STAGGER_MAX_FLOWS:
        return _staggered_stalls(
            sizes_pkts, cwnd_caps,
            init_cwnd=init_cwnd, cap_pkts=cap_pkts,
            pkt_time_s=pkt_time_s, rtt_s=rtt_s, rto_s=rto_s,
        )
    sizes = np.asarray(sizes_pkts, dtype=np.int64)
    if n > cap_pkts and bool((sizes == 1).all()):
        # uniform single-packet storm (the metadata-RPC shape), closed
        # form: each RTO generation admits one buffer's worth in arrival
        # order, everyone else bounces and retries — flow k is served in
        # generation k // cap_pkts, having lost its packet once per
        # generation it sat out.  O(n) instead of O(generations) passes.
        gen = np.arange(n, dtype=np.int64) // cap_pkts
        return gen * rto_s, gen.copy(), gen.copy()
    rem = sizes.copy()
    caps = np.asarray(cwnd_caps, dtype=np.int64)
    cwnd = np.minimum(np.full(n, init_cwnd, dtype=np.int64), caps)
    wake = np.zeros(n)
    stall = np.zeros(n)
    timeouts = np.zeros(n, dtype=np.int64)
    drops = np.zeros(n, dtype=np.int64)
    t = 0.0
    desync_at = math.inf  # first RTO expiry: lockstep ends there
    idxmap = np.arange(n)  # row -> original flow (rows compact away)
    for _ in range(_PROBE_MAX_ITERS):
        live = rem > 0
        nlive = int(live.sum())
        if nlive == 0:
            break
        if 2 * nlive < len(rem):
            # compact finished flows away so a storm's generational tail
            # costs O(live) per round, not O(cohort)
            rem, cwnd, caps = rem[live], cwnd[live], caps[live]
            wake, idxmap = wake[live], idxmap[live]
            live = rem > 0
        active = live & (wake <= t + 1e-12)
        if not active.any():
            t = float(wake[live].min())
            continue
        want = np.where(active, np.minimum(cwnd, rem), 0)
        total_want = int(want.sum())
        if total_want <= cap_pkts:
            admit = want
        elif t < desync_at:
            # synchronized burst: tail-drop in arrival order
            ahead = np.cumsum(want) - want
            admit = np.clip(cap_pkts - ahead, 0, want)
        else:
            # desynchronized: largest-remainder proportional admission
            cum = np.floor(np.cumsum(want) * (cap_pkts / total_want))
            admit = np.minimum(
                np.diff(np.concatenate([[0.0], cum])).astype(np.int64), want
            )
            if int(active.sum()) <= cap_pkts:
                # the continuous drain serves every desynchronized flow
                # at least one packet per round when fan-in fits capacity
                admit = np.where(want > 0, np.maximum(admit, 1), 0)
        lost = want - admit
        full_loss = active & (admit == 0)
        partial = active & (admit > 0) & (lost > 0)
        clean = active & (lost == 0)
        rem -= admit
        drops[idxmap] += lost
        cwnd[clean] = np.minimum(cwnd[clean] + 1, caps[clean])
        cwnd[partial] = np.maximum(cwnd[partial] // 2, 1)
        if full_loss.any():
            stall[idxmap[full_loss]] += rto_s
            wake[full_loss] = t + rto_s
            cwnd[full_loss] = np.minimum(init_cwnd, caps[full_loss])
            timeouts[idxmap[full_loss]] += 1
            desync_at = min(desync_at, t + rto_s)
        t += max(rtt_s, float(admit.sum()) * pkt_time_s)
    return stall, timeouts, drops


class FluidEngine:
    """Max-min fair-share rate allocator over :class:`SwitchPort` hops.

    One engine serves one :class:`~repro.net.fabric.Topology`.  Flows
    are registered with :meth:`start_flow` (returning a pooled
    :class:`~repro.sim.Event` that triggers when the bytes drain) and
    live in numpy struct-of-arrays — remaining bytes, current rate, up
    to three hop port ids — so every epoch is vectorized.

    The caller (``Topology._fluid``) owns everything packet-shaped:
    converting bytes to packets, the latency surcharge, byte accounting
    on the hop ports, and tracing spans.  The engine owns time-shared
    bandwidth and burst stalls.
    """

    #: Flows cross at most this many ports (leaf/spine cross-rack = 3:
    #: source uplink → destination downlink → destination edge).
    MAX_HOPS = 3

    def __init__(self, sim, fabric) -> None:
        self.sim = sim
        self.fab = fabric
        #: Rate-recompute / completion-batch interval, seconds.  Defaults
        #: to the fabric RTT — the same granularity the exact engine
        #: resolves (one window round per RTT).
        self.tick_s = fabric.fluid_tick_s if fabric.fluid_tick_s is not None else fabric.rtt_s
        self._ports: list = []                    # SwitchPort registry
        self._port_ids: dict[int, int] = {}       # id(port) -> index
        self._caps_list: list[float] = []         # per-port capacity, B/s
        self._caps_np: Optional[np.ndarray] = None
        self._caps_stale = False                  # a port went down/up
        # flow table (struct-of-arrays, grown by doubling)
        self._n = 0                               # slots allocated (high water)
        self._rem = np.zeros(0)                   # bytes left to drain
        self._rate = np.zeros(0)                  # current share, B/s
        self._hops = np.zeros((0, self.MAX_HOPS), dtype=np.int32)
        self._live: set[int] = set()              # slots in the allocation
        self._events: list = []
        self._free: list[int] = []
        self._tails: dict[int, float] = {}  # id(event) -> post-drain tail (s)
        # arrivals since the last epoch: (slot, cwnd_cap, ctx)
        self._pending: list = []
        # flows waiting out a probe stall: heap of (wake_t, slot)
        self._stalled: list = []
        self._last_advance = 0.0
        self._wake_gen = 0
        # introspection (surfaced by Topology.fluid_stats / benchmarks)
        self.flows_started = 0
        self.flows_completed = 0
        self.epochs = 0
        self.probes = 0
        self.stalled_flows = 0

    # -- registration --------------------------------------------------
    def _port_id(self, port) -> int:
        pid = self._port_ids.get(id(port))
        if pid is None:
            pid = len(self._ports)
            self._ports.append(port)
            self._port_ids[id(port)] = pid
            cap = 0.0 if port.down else port.link.bandwidth_Bps
            self._caps_list.append(cap)
            # keep the vector cache in step (doubling buffer) so epochs
            # never rebuild it just because a new port registered
            buf = self._caps_np
            if buf is None or pid >= len(buf):
                grown = np.empty(max(256, 2 * (pid + 1)))
                if buf is not None:
                    grown[: len(buf)] = buf
                self._caps_np = buf = grown
            buf[pid] = cap
        return pid

    def _grow(self, need: int) -> None:
        cap = max(256, 2 * len(self._rem), need)
        pad = cap - len(self._rem)
        self._rem = np.concatenate([self._rem, np.zeros(pad)])
        self._rate = np.concatenate([self._rate, np.zeros(pad)])
        self._hops = np.concatenate(
            [self._hops, np.full((pad, self.MAX_HOPS), -1, dtype=np.int32)]
        )
        self._events.extend([None] * pad)

    def start_flow(self, path: list, npkts: int, cwnd_cap: int, ctx=None):
        """Register a flow over ``path`` hops; returns its done event.

        The flow joins the allocation in the arrival batch at the
        current instant (all same-timestamp arrivals share one wakeup);
        a synchronized cohort that would overflow the destination
        buffer is stall-probed first (see :func:`burst_stalls`).
        """
        if self._free:
            slot = self._free.pop()
        else:
            slot = self._n
            if slot >= len(self._rem):
                self._grow(slot + 1)
            self._n += 1
        self._rem[slot] = float(npkts) * self.fab.pkt_bytes
        self._rate[slot] = 0.0
        hops = self._hops[slot]
        hops[:] = -1
        for i, p in enumerate(path):
            hops[i] = self._port_id(p)
        ev = self.sim.acquire_event(name="fluid.xfer")
        self._events[slot] = ev
        self._pending.append((slot, cwnd_cap, ctx))
        self.flows_started += 1
        # one epoch per distinct arrival timestamp, however many flows
        self.sim.call_at_coalesced(self.sim.now, ("fluid", id(self)), self._epoch)
        return ev

    def mark_dirty(self) -> None:
        """A port capacity changed (blackout/restore): recompute shares."""
        self._caps_stale = True
        self.sim.call_at_coalesced(self.sim.now, ("fluid", id(self)), self._epoch)

    # -- the epoch -----------------------------------------------------
    #: At or below this many live flows an epoch runs in plain Python
    #: (dicts and floats); above it, vectorized numpy.  The steady state
    #: of an RPC-heavy workload is one or two live flows per epoch, and
    #: numpy's fixed per-call overhead would dominate there.
    SMALL = 8

    def _advance(self, now: float) -> None:
        dt = now - self._last_advance
        if dt > 0 and self._live:
            if len(self._live) <= self.SMALL:
                for s in self._live:
                    if self._rate[s] > 0.0:
                        self._rem[s] -= self._rate[s] * dt
            else:
                idx = np.fromiter(self._live, dtype=np.int64)
                self._rem[idx] -= self._rate[idx] * dt
        self._last_advance = now

    def _set_tail(self, slot: int, tail_s: float) -> None:
        """Record the post-drain latency tail for the flow's done-event.

        Consumed (popped) by :meth:`pop_tail_s` from ``Topology._fluid``.
        Keyed by the event object's identity because slots (and pooled
        events) are recycled the moment a flow completes.
        """
        ev = self._events[slot]
        if ev is not None:
            self._tails[id(ev)] = tail_s

    def pop_tail_s(self, ev) -> float:
        """Pop the latency tail (seconds) recorded for ``ev``.

        Call exactly once per completed flow, *before* recycling the
        event.  Defaults to one RTT (the desynchronized-flow tail) if
        the flow never reached an activation path.
        """
        return self._tails.pop(id(ev), self.fab.rtt_s)

    def _activate_pending(self, now: float) -> None:
        pending, self._pending = self._pending, []
        fab = self.fab
        # release stalled flows whose RTO expired
        while self._stalled and self._stalled[0][0] <= now + 1e-12:
            _, slot = heapq.heappop(self._stalled)
            self._live.add(slot)
        if not pending:
            return
        if fab.buffer_pkts is None or len(pending) == 1:
            # Solo arrivals (and infinite-buffer batches) are not a
            # synchronized cohort: the solo floor already carries their
            # full ack tail from t0, and any drain delay means other
            # traffic desynchronized them — one trailing RTT.
            for slot, _cap, _ctx in pending:
                self._live.add(slot)
            return
        # synchronized cohorts, grouped by destination (last) hop
        cohorts: dict[int, list] = {}
        for item in pending:
            hops = self._hops[item[0]]
            last = int(hops[int((hops >= 0).sum()) - 1])  # destination hop
            cohorts.setdefault(last, []).append(item)
        for dest, items in cohorts.items():
            if len(items) < 2:
                self._live.add(items[0][0])
                continue
            port = self._ports[dest]
            self.probes += 1
            sizes = np.array(
                [max(1, int(round(self._rem[s] / fab.pkt_bytes))) for s, _, _ in items],
                dtype=np.int64,
            )
            caps = np.array([c for _, c, _ in items], dtype=np.int64)
            stall, timeouts, drops = burst_stalls(
                sizes, caps,
                init_cwnd=fab.init_cwnd,
                cap_pkts=port.round_capacity_pkts,
                pkt_time_s=port.pkt_time_s,
                rtt_s=fab.rtt_s,
                rto_s=max(fab.min_rto_s, 2.0 * fab.rtt_s),
            )
            # A cohort the probe found clean (no drops, no RTOs) stays in
            # *lockstep* in exact mode: every member idles through each
            # ack gap at the same instant, and only the part of each
            # round's RTT that the other members' transmissions don't
            # cover goes unoverlapped (see :func:`lockstep_tail_s`).
            # Any loss breaks the symmetry (halved windows / staggered
            # RTO returns) and only the final RTT survives — the
            # :meth:`pop_tail_s` default.
            clean = not bool(timeouts.any()) and not bool(drops.any())
            for i, (slot, _cap, ctx) in enumerate(items):
                if clean:
                    self._set_tail(slot, lockstep_tail_s(
                        int(sizes[i]), fab.init_cwnd, int(caps[i]),
                        len(items), port.pkt_time_s, fab.rtt_s,
                    ))
                if timeouts[i]:
                    port.record_timeouts(int(timeouts[i]))
                if drops[i]:
                    port.record_drops(int(drops[i]))
                if ctx is not None:
                    ctx.drops_pkts += int(drops[i])
                    ctx.rtos += int(timeouts[i])
                if stall[i] > 0:
                    self.stalled_flows += 1
                    heapq.heappush(self._stalled, (now + float(stall[i]), slot))
                else:
                    self._live.add(slot)

    def _complete(self, now: float) -> None:
        if not self._live:
            return
        # batch: finish everything that drains within one tick at the
        # frozen rates (the earliest finisher is exact; the batch is at
        # most one tick early — the documented resolution of this mode)
        if len(self._live) <= self.SMALL:
            done = sorted(
                s for s in self._live
                if self._rem[s] <= max(_EPS_BYTES, self._rate[s] * self.tick_s)
            )
        else:
            idx = np.sort(np.fromiter(self._live, dtype=np.int64))
            mask = self._rem[idx] <= np.maximum(_EPS_BYTES, self._rate[idx] * self.tick_s)
            done = idx[mask].tolist()
        for slot in done:
            slot = int(slot)
            self._live.discard(slot)
            self._rem[slot] = 0.0
            self._rate[slot] = 0.0
            self._hops[slot, :] = -1
            ev, self._events[slot] = self._events[slot], None
            self._free.append(slot)
            self.flows_completed += 1
            ev.succeed()

    def _port_cap(self, pid: int) -> float:
        p = self._ports[pid]
        return 0.0 if p.down else p.link.bandwidth_Bps

    def _port_caps(self, pids: np.ndarray) -> np.ndarray:
        """Capacities (B/s) for ``pids`` from the cached per-port vector.

        The cache refreshes only when a port is newly registered or a
        blackout/restore flips a ``down`` flag (``mark_dirty``) — never
        per epoch.
        """
        if self._caps_stale:
            for i, p in enumerate(self._ports):
                c = 0.0 if p.down else p.link.bandwidth_Bps
                self._caps_list[i] = c
                self._caps_np[i] = c
            self._caps_stale = False
        return self._caps_np[pids]

    def _recompute_small(self) -> None:
        """Progressive filling in plain Python — the 1–8-flow epoch.

        Identical arithmetic to the vectorized path (same freeze and
        saturation thresholds) restricted to the ports the live flows
        actually cross, so an epoch in a million-port topology costs
        the live flows' hop count, not the port count.
        """
        flows: dict[int, list[int]] = {}
        resid: dict[int, float] = {}
        for s in self._live:
            hp = []
            for c in range(self.MAX_HOPS):
                pid = int(self._hops[s, c])
                if pid < 0:
                    break
                hp.append(pid)
                if pid not in resid:
                    resid[pid] = self._port_cap(pid)
            flows[s] = hp
        rate = {s: 0.0 for s in flows}
        un = set(flows)
        for _ in range(len(resid) + 2):
            if not un:
                break
            counts: dict[int, int] = {}
            for s in un:
                for pid in flows[s]:
                    counts[pid] = counts.get(pid, 0) + 1
            heads = {}
            for s in un:
                h = math.inf
                for pid in flows[s]:
                    fair = resid[pid] / counts[pid]
                    if fair < h:
                        h = fair
                heads[s] = h  # inf when every hop is infinite-bandwidth
            dead = [s for s in un if heads[s] <= 1e-9]
            if dead:
                un.difference_update(dead)
                continue
            free = [s for s in un if math.isinf(heads[s])]
            if free:
                for s in free:
                    rate[s] = _INF_RATE
                un.difference_update(free)
                continue
            delta = min(heads[s] for s in un)
            for s in un:
                rate[s] += delta
                for pid in flows[s]:
                    resid[pid] = max(0.0, resid[pid] - delta)
            un = {s for s in un if heads[s] > delta * (1.0 + 1e-9)}
        for s, r in rate.items():
            self._rate[s] = r

    def _recompute(self, now: float) -> None:
        if not self._live:
            return
        if len(self._live) <= self.SMALL:
            self._recompute_small()
            return
        idx = np.fromiter(self._live, dtype=np.int64)
        # restrict the filling to ports the live flows actually cross —
        # a storm registers one port per client, and an epoch must not
        # scale with topology size, only with its own live flows
        hg = self._hops[idx]
        vm = hg >= 0
        uniq, inv = np.unique(hg[vm], return_inverse=True)
        h = np.full(hg.shape, -1, dtype=np.int64)
        h[vm] = inv
        nports = uniq.size
        cap = self._port_caps(uniq)
        resid = cap.copy()
        r = np.zeros(idx.size)
        un = np.ones(idx.size, dtype=bool)
        # progressive filling: raise every unfrozen flow equally until a
        # port saturates; freeze the flows it bottlenecks; repeat.  Each
        # iteration saturates >= 1 port, so <= nports iterations.
        for _ in range(nports + 2):
            if not un.any():
                break
            counts = np.zeros(nports)
            for c in range(self.MAX_HOPS):
                hv = h[un, c]
                valid = hv[hv >= 0]
                if valid.size:
                    np.add.at(counts, valid, 1.0)
            fair = np.where(counts > 0, resid / np.maximum(counts, 1.0), np.inf)
            head = np.full(idx.size, np.inf)
            for c in range(self.MAX_HOPS):
                hv = h[:, c]
                m = un & (hv >= 0)
                if m.any():
                    head[m] = np.minimum(head[m], fair[hv[m]])
            dead = un & (head <= 1e-9)          # down/saturated bottleneck
            if dead.any():
                un &= ~dead
                continue
            free_run = un & ~np.isfinite(head)  # all hops infinite-bandwidth
            if free_run.any():
                r[free_run] = _INF_RATE
                un &= ~free_run
                continue
            delta = float(head[un].min())
            r[un] += delta
            for c in range(self.MAX_HOPS):
                hv = h[un, c]
                valid = hv[hv >= 0]
                if valid.size:
                    np.add.at(resid, valid, -delta)
            np.maximum(resid, 0.0, out=resid)
            un &= ~(head <= delta * (1.0 + 1e-9))
        self._rate[idx] = r

    def _epoch(self) -> None:
        now = self.sim.now
        self.epochs += 1
        self._advance(now)
        self._activate_pending(now)
        self._complete(now)
        self._recompute(now)
        # next wakeup: the earliest completion at the new rates, or the
        # next stall expiry — whichever comes first
        t_next = math.inf
        if self._live:
            if len(self._live) <= self.SMALL:
                for s in self._live:
                    r = self._rate[s]
                    if r > 0.0:
                        eta = now + self._rem[s] / r
                        if eta < t_next:
                            t_next = eta
            else:
                idx = np.fromiter(self._live, dtype=np.int64)
                rates = self._rate[idx]
                pos = rates > 0
                if pos.any():
                    t_next = now + float((self._rem[idx][pos] / rates[pos]).min())
        if self._stalled:
            t_next = min(t_next, self._stalled[0][0])
        if math.isinf(t_next):
            return
        self._wake_gen += 1
        self.sim.call_at(max(t_next, now), self._wake, self._wake_gen)

    def _wake(self, gen: int) -> None:
        if gen != self._wake_gen:  # superseded by a later epoch
            return
        self._epoch()

    def stats(self) -> dict:
        """Always-on engine totals (shape mirrors ``event_stats()``)."""
        return {
            "flows_started": self.flows_started,
            "flows_completed": self.flows_completed,
            "flows_active": len(self._live),
            "epochs": self.epochs,
            "probes": self.probes,
            "stalled_flows": self.stalled_flows,
            "tick_s": self.tick_s,
        }
