"""Shared resources for simulation processes.

:class:`Resource` models a server with fixed capacity and a FIFO queue —
the building block for disk heads, NICs, and service threads.
:class:`Store` is an unbounded FIFO message channel used for request
queues between simulated components.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.core import Event, Process, SimulationError, Simulator


class Grant:
    """Token returned by an :class:`Acquire`; proof of holding one unit."""

    __slots__ = ("resource", "acquired_at", "released")

    def __init__(self, resource: "Resource", acquired_at: float) -> None:
        self.resource = resource
        self.acquired_at = acquired_at
        self.released = False


class Resource:
    """Capacity-limited resource with FIFO admission.

    Processes request a unit with ``grant = yield Acquire(res)`` and must
    call ``res.release(grant)`` when done.  Utilization statistics are
    tracked for reporting.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: Deque[Process] = deque()
        self._busy_time = 0.0
        self._last_change = 0.0
        self.total_grants = 0
        self.total_wait = 0.0
        self._enqueue_times: dict[int, float] = {}
        obs = getattr(sim, "obs", None)
        if obs is not None:
            label = name or "anon"
            self._h_wait = obs.metrics.histogram("sim.resource.wait_s", resource=label)
            self._h_service = obs.metrics.histogram(
                "sim.resource.service_s", resource=label
            )
        else:
            self._h_wait = self._h_service = None

    # internal protocol used by Acquire dispatch
    def _enqueue(self, proc: Process) -> None:
        self._enqueue_times[id(proc)] = self.sim.now
        if self.in_use < self.capacity:
            self._grant(proc)
        else:
            self._queue.append(proc)

    def _grant(self, proc: Process) -> None:
        self._accumulate()
        self.in_use += 1
        self.total_grants += 1
        wait = self.sim.now - self._enqueue_times.pop(id(proc), self.sim.now)
        self.total_wait += wait
        if self._h_wait is not None:
            self._h_wait.observe(wait)
        grant = Grant(self, self.sim.now)
        ev = Event(self.sim, name=f"grant:{self.name}")
        ev._add_waiter(proc)
        ev.succeed(grant)

    def release(self, grant: Grant) -> None:
        if grant.resource is not self:
            raise SimulationError("grant released on the wrong resource")
        if grant.released:
            raise SimulationError("grant released twice")
        grant.released = True
        if self._h_service is not None:
            self._h_service.observe(self.sim.now - grant.acquired_at)
        self._accumulate()
        self.in_use -= 1
        if self._queue and self.in_use < self.capacity:
            self._grant(self._queue.popleft())

    def _accumulate(self) -> None:
        now = self.sim.now
        self._busy_time += self.in_use * (now - self._last_change)
        self._last_change = now

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def utilization(self) -> float:
        """Time-averaged fraction of capacity in use since t=0."""
        self._accumulate()
        if self.sim.now == 0.0:
            return 0.0
        return self._busy_time / (self.sim.now * self.capacity)

    def mean_wait(self) -> float:
        return self.total_wait / self.total_grants if self.total_grants else 0.0


class Store:
    """Unbounded FIFO channel: ``put`` items, processes ``yield store.get()``."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.total_put = 0

    def put(self, item: Any) -> None:
        self.total_put += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item (FIFO)."""
        ev = Event(self.sim, name=f"get:{self.name}")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)

    def peek(self) -> Optional[Any]:
        return self._items[0] if self._items else None
