"""Discrete-event simulation kernel used by every simulated substrate.

The kernel is a small, deterministic coroutine scheduler in the style of
SimPy: simulation *processes* are Python generators that ``yield`` request
objects (:class:`Timeout`, :class:`Acquire`, :class:`Wait`, or another
:class:`Process`) and are resumed by the :class:`Simulator` when the request
completes.  All state advances at discrete event times; there is no real
concurrency, so runs are exactly reproducible.

Example
-------
>>> from repro.sim import Simulator, Timeout
>>> sim = Simulator()
>>> log = []
>>> def worker(name, delay):
...     yield Timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(worker("a", 2.0))
>>> _ = sim.spawn(worker("b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from repro.sim.core import (
    Acquire,
    Event,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    Wait,
)
from repro.sim.resources import Resource, Store
from repro.sim.stats import Counter, Gauge, TimeWeightedValue, WelfordStat

__all__ = [
    "Acquire",
    "Counter",
    "Event",
    "Gauge",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "TimeWeightedValue",
    "Timeout",
    "Wait",
    "WelfordStat",
]
