"""Core event loop, events, and coroutine processes.

Determinism contract: events scheduled for the same simulated time fire in
the order they were scheduled (FIFO tie-break via a monotone sequence
number).  No wall-clock or nondeterministic source is consulted anywhere.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.obs import current as _current_obs


class SimulationError(RuntimeError):
    """Raised for protocol violations inside the simulation kernel."""


class Event:
    """A one-shot occurrence that processes may wait on.

    An event starts *pending*; :meth:`succeed` (or :meth:`fail`) triggers it
    exactly once, resuming every waiter.  Waiters that arrive after the
    trigger are resumed immediately at the current simulation time.
    """

    __slots__ = ("sim", "_value", "_exc", "_done", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._done = False
        self._waiters: list[Process] = []

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError(f"event {self.name!r} not yet triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._done:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._done = True
        self._value = value
        self._flush()
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._done:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._done = True
        self._exc = exc
        self._flush()
        return self

    def _add_waiter(self, proc: "Process") -> None:
        if self._done:
            self.sim._schedule(self.sim.now, proc._resume_from_event, self)
        else:
            self._waiters.append(proc)

    def _flush(self) -> None:
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim._schedule(self.sim.now, proc._resume_from_event, self)


class Timeout:
    """Yield target: resume the process after ``delay`` simulated seconds."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay!r}")
        self.delay = float(delay)
        self.value = value


class Wait:
    """Yield target: block until ``event`` triggers; returns its value."""

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event


class Acquire:
    """Yield target: block until a unit of ``resource`` is granted.

    The yield expression evaluates to a *grant* token which must later be
    passed to ``resource.release(grant)``.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: Any) -> None:
        self.resource = resource


class Process:
    """A running generator coroutine inside a :class:`Simulator`.

    A process is itself waitable: yielding a ``Process`` blocks until it
    finishes and evaluates to its return value (the generator's
    ``StopIteration`` value).  Uncaught exceptions propagate to waiters, or
    to :meth:`Simulator.run` if nobody is waiting.
    """

    __slots__ = ("sim", "gen", "name", "done_event", "_started")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"spawn() needs a generator, got {type(gen).__name__}; "
                "did you forget a yield in the process function?"
            )
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done_event = Event(sim, name=f"done:{self.name}")
        self._started = False

    @property
    def finished(self) -> bool:
        return self.done_event.triggered

    def _resume_from_event(self, event: Event) -> None:
        try:
            value = event.value
        except BaseException as exc:  # propagate failure into the coroutine
            self._step(exc=exc)
            return
        self._step(value=value)

    def _step(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value) if self._started else next(self.gen)
                self._started = True
        except StopIteration as stop:
            if self.sim._c_finished is not None:
                self.sim._c_finished.value += 1.0
            self.done_event.succeed(stop.value)
            return
        except BaseException as err:
            if self.done_event._waiters:
                self.done_event.fail(err)
            else:
                self.done_event._done = True
                self.done_event._exc = err
                self.sim._crash(err)
            return
        self._dispatch(target)

    def _dispatch(self, target: Any) -> None:
        sim = self.sim
        if isinstance(target, Timeout):
            sim._schedule(sim.now + target.delay, self._step, target.value)
        elif isinstance(target, Wait):
            target.event._add_waiter(self)
        elif isinstance(target, Event):
            target._add_waiter(self)
        elif isinstance(target, Process):
            target.done_event._add_waiter(self)
        elif isinstance(target, Acquire):
            target.resource._enqueue(self)
        else:
            self._step(exc=SimulationError(f"process {self.name!r} yielded unsupported {target!r}"))


class Simulator:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    trace:
        Optional callable ``(time, label)`` invoked for every dispatched
        event; useful when debugging model behaviour.
    obs:
        Optional :class:`repro.obs.Observability` bundle; defaults to the
        globally active one (``repro.obs.current()``).  When set, the
        kernel counts scheduled/dispatched events and process lifecycle
        into the bundle's registry, and resources built on this
        simulator record wait/service histograms.
    """

    def __init__(
        self,
        trace: Optional[Callable[[float, str], None]] = None,
        obs=None,
    ) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self._trace = trace
        self._crashed: Optional[BaseException] = None
        self.obs = obs if obs is not None else _current_obs()
        if self.obs is not None:
            m = self.obs.metrics
            self._c_scheduled = m.counter("sim.events_scheduled")
            self._c_dispatched = m.counter("sim.events_dispatched")
            self._c_spawned = m.counter("sim.processes_spawned")
            self._c_finished = m.counter("sim.processes_finished")
            self._g_now = m.gauge("sim.now")
        else:
            self._c_scheduled = self._c_dispatched = None
            self._c_spawned = self._c_finished = self._g_now = None

    # -- scheduling --------------------------------------------------
    def _schedule(self, time: float, fn: Callable, *args: Any) -> None:
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._heap, (time, self._seq, fn, args))
        self._seq += 1
        if self._c_scheduled is not None:
            self._c_scheduled.value += 1.0

    def call_at(self, time: float, fn: Callable, *args: Any) -> None:
        """Schedule a plain callback at an absolute simulated time."""
        self._schedule(time, fn, *args)

    def call_after(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule a plain callback ``delay`` seconds from now."""
        self._schedule(self.now + delay, fn, *args)

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new process; it takes its first step at the current time."""
        proc = Process(self, gen, name=name)
        self._schedule(self.now, proc._step)
        if self._c_spawned is not None:
            self._c_spawned.value += 1.0
        return proc

    def spawn_all(self, gens: Iterable[Generator]) -> list[Process]:
        return [self.spawn(g) for g in gens]

    def _crash(self, exc: BaseException) -> None:
        if self._crashed is None:
            self._crashed = exc

    # -- execution ---------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains or ``until`` is reached.

        Returns the final simulation time.  An exception that escapes a
        process with no waiter aborts the run and is re-raised here.
        """
        heap = self._heap
        dispatched = self._c_dispatched
        try:
            while heap:
                time, _seq, fn, args = heap[0]
                if until is not None and time > until:
                    self.now = until
                    break
                heapq.heappop(heap)
                self.now = time
                if self._trace is not None:
                    self._trace(time, getattr(fn, "__qualname__", repr(fn)))
                if dispatched is not None:
                    dispatched.value += 1.0
                fn(*args)
                if self._crashed is not None:
                    exc, self._crashed = self._crashed, None
                    raise exc
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            # keep the gauge truthful even when a crashed process re-raises
            if self._g_now is not None:
                self._g_now.set(self.now)
        return self.now

    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")
