"""Core event loop, events, and coroutine processes.

Determinism contract: events scheduled for the same simulated time fire in
the order they were scheduled (FIFO tie-break via a monotone sequence
number).  No wall-clock or nondeterministic source is consulted anywhere.
"""

from __future__ import annotations

import heapq
import re
import time as _time
from typing import Any, Callable, Generator, Iterable, Optional, Union

from repro.obs import current as _current_obs

#: Process labels are grouped by stripping run numbers: "osd12" and
#: "osd3" both profile as "osd#", "shuffle:3->1" as "shuffle:#->#".
_DIGITS = re.compile(r"\d+")


class SimulationError(RuntimeError):
    """Raised for protocol violations inside the simulation kernel."""


class Event:
    """A one-shot occurrence that processes may wait on.

    An event starts *pending*; :meth:`succeed` (or :meth:`fail`) triggers it
    exactly once, resuming every waiter.  Waiters that arrive after the
    trigger are resumed immediately at the current simulation time.
    """

    __slots__ = ("sim", "_value", "_exc", "_done", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._done = False
        self._waiters: list[Process] = []

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError(f"event {self.name!r} not yet triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._done:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._done = True
        self._value = value
        self._flush()
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._done:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._done = True
        self._exc = exc
        self._flush()
        return self

    def _add_waiter(self, proc: "Process") -> None:
        if self._done:
            self.sim._schedule(self.sim.now, proc._resume_from_event, self)
        else:
            self._waiters.append(proc)

    def _flush(self) -> None:
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim._schedule(self.sim.now, proc._resume_from_event, self)


class Timeout:
    """Yield target: resume the process after ``delay`` simulated seconds."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay!r}")
        self.delay = float(delay)
        self.value = value


class Wait:
    """Yield target: block until ``event`` triggers; returns its value."""

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event


class Acquire:
    """Yield target: block until a unit of ``resource`` is granted.

    The yield expression evaluates to a *grant* token which must later be
    passed to ``resource.release(grant)``.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: Any) -> None:
        self.resource = resource


class Process:
    """A running generator coroutine inside a :class:`Simulator`.

    A process is itself waitable: yielding a ``Process`` blocks until it
    finishes and evaluates to its return value (the generator's
    ``StopIteration`` value).  Uncaught exceptions propagate to waiters, or
    to :meth:`Simulator.run` if nobody is waiting.
    """

    __slots__ = ("sim", "gen", "name", "done_event", "_started")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"spawn() needs a generator, got {type(gen).__name__}; "
                "did you forget a yield in the process function?"
            )
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done_event = Event(sim, name=f"done:{self.name}")
        self._started = False

    @property
    def finished(self) -> bool:
        return self.done_event.triggered

    def _resume_from_event(self, event: Event) -> None:
        try:
            value = event.value
        except BaseException as exc:  # propagate failure into the coroutine
            self._step(exc=exc)
            return
        self._step(value=value)

    def _step(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value) if self._started else next(self.gen)
                self._started = True
        except StopIteration as stop:
            self.sim.processes_finished += 1
            if self.sim._c_finished is not None:
                self.sim._c_finished.value += 1.0
            self.done_event.succeed(stop.value)
            return
        except BaseException as err:
            if self.done_event._waiters:
                self.done_event.fail(err)
            else:
                self.done_event._done = True
                self.done_event._exc = err
                self.sim._crash(err)
            return
        self._dispatch(target)

    def _dispatch(self, target: Any) -> None:
        sim = self.sim
        if isinstance(target, Timeout):
            sim._schedule(sim.now + target.delay, self._step, target.value)
        elif isinstance(target, Wait):
            target.event._add_waiter(self)
        elif isinstance(target, Event):
            target._add_waiter(self)
        elif isinstance(target, Process):
            target.done_event._add_waiter(self)
        elif isinstance(target, Acquire):
            target.resource._enqueue(self)
        else:
            self._step(exc=SimulationError(f"process {self.name!r} yielded unsupported {target!r}"))


class Simulator:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    trace:
        Optional callable ``(time, label)`` invoked for every dispatched
        event; useful when debugging model behaviour.
    obs:
        Optional :class:`repro.obs.Observability` bundle; defaults to the
        globally active one (``repro.obs.current()``).  When set, the
        kernel counts scheduled/dispatched events and process lifecycle
        into the bundle's registry, and resources built on this
        simulator record wait/service histograms.
    profile:
        Kernel profiler knob (flight-recorder pillar 2).  ``False``
        (default) disables it; ``True`` measures the wall time of every
        dispatched event; an integer ``n > 1`` samples one event in
        ``n`` (the sampled counts/times are ~``1/n`` of the totals).
        Samples are attributed to the scheduled callback's *label* —
        the owning process name with run numbers stripped (``osd#``),
        or the callback's qualname — and read back via
        :meth:`profile_stats`.  Profiling never touches simulated time.

    Independently of ``obs`` and ``profile``, the kernel keeps **always-
    on totals** cheap enough for uninstrumented runs — events scheduled/
    dispatched, processes spawned/finished, max heap depth, wall-clock
    per :meth:`run` slice — snapshot via :meth:`event_stats`.

    **Batching facilities** (used by high-fan-in consumers such as the
    fluid fabric engine, :mod:`repro.net.fluid`):

    * :meth:`call_at_coalesced` — idempotent scheduling: repeated
      requests for the same ``(time, key)`` share one heap entry, so a
      tick that ten thousand flows want to observe costs one event.
      Duplicates are counted in ``event_stats()["wakeups_coalesced"]``.
    * :meth:`acquire_event` / :meth:`recycle_event` — a freelist of
      :class:`Event` objects for hot single-waiter request/response
      cycles; reuses are counted in ``event_stats()["events_pooled"]``.

    Both are pure overlays: nothing in the kernel's determinism contract
    (same-time events fire in scheduling order) changes.
    """

    def __init__(
        self,
        trace: Optional[Callable[[float, str], None]] = None,
        obs=None,
        profile: Union[bool, int] = False,
    ) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self._trace = trace
        self._crashed: Optional[BaseException] = None
        # always-on kernel totals (see event_stats); plain int/float bumps
        self.events_dispatched = 0
        self.processes_spawned = 0
        self.processes_finished = 0
        self.max_heap_depth = 0
        self.run_wall_s = 0.0
        self.run_slices = 0
        # batching overlays: coalesced tick wakeups + pooled events
        self._coalesced: dict[tuple, bool] = {}
        self.wakeups_coalesced = 0
        self._event_pool: list[Event] = []
        self.events_pooled = 0
        self._profile_every = 1 if profile is True else int(profile)
        self._profile_acc: dict[str, list] = {}  # label -> [samples, wall_s]
        self.obs = obs if obs is not None else _current_obs()
        if self.obs is not None:
            m = self.obs.metrics
            self._c_scheduled = m.counter("sim.events_scheduled")
            self._c_dispatched = m.counter("sim.events_dispatched")
            self._c_spawned = m.counter("sim.processes_spawned")
            self._c_finished = m.counter("sim.processes_finished")
            self._g_now = m.gauge("sim.now")
        else:
            self._c_scheduled = self._c_dispatched = None
            self._c_spawned = self._c_finished = self._g_now = None

    # -- scheduling --------------------------------------------------
    def _schedule(self, time: float, fn: Callable, *args: Any) -> None:
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._heap, (time, self._seq, fn, args))
        self._seq += 1
        if len(self._heap) > self.max_heap_depth:
            self.max_heap_depth = len(self._heap)
        if self._c_scheduled is not None:
            self._c_scheduled.value += 1.0

    def call_at(self, time: float, fn: Callable, *args: Any) -> None:
        """Schedule a plain callback at an absolute simulated time."""
        self._schedule(time, fn, *args)

    def call_after(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule a plain callback ``delay`` seconds from now."""
        self._schedule(self.now + delay, fn, *args)

    def call_at_coalesced(self, time: float, key: Any, fn: Callable, *args: Any) -> bool:
        """Schedule ``fn`` at ``time``, coalescing duplicate requests.

        The first request for a given ``(time, key)`` pays one heap
        entry; every further request for the same pair before it fires
        is dropped (the callback is already scheduled) and counted in
        ``event_stats()["wakeups_coalesced"]``.  Returns True when this
        call actually scheduled, False when it coalesced.

        This is the homogeneous-wakeup batcher: a fan-in of N identical
        per-tick wakeups (e.g. N flows all wanting the fluid engine to
        recompute rates at the next tick boundary) costs one event
        instead of N.  ``fn``/``args`` are taken from the *first*
        request, so every caller sharing a key must pass the same
        callback.
        """
        k = (time, key)
        if k in self._coalesced:
            self.wakeups_coalesced += 1
            return False
        self._coalesced[k] = True
        self._schedule(time, self._fire_coalesced, k, fn, args)
        return True

    def _fire_coalesced(self, k: tuple, fn: Callable, args: tuple) -> None:
        del self._coalesced[k]
        fn(*args)

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def acquire_event(self, name: str = "") -> Event:
        """An :class:`Event` from the freelist (or a fresh one).

        Pooled events are for hot single-waiter cycles: the owner waits,
        the peer triggers, the owner calls :meth:`recycle_event` after
        resuming.  Reuse counts land in
        ``event_stats()["events_pooled"]``.
        """
        pool = self._event_pool
        if pool:
            ev = pool.pop()
            ev.name = name
            ev._value = None
            ev._exc = None
            ev._done = False
            self.events_pooled += 1
            return ev
        return Event(self, name=name)

    def recycle_event(self, ev: Event) -> None:
        """Return a finished event to the freelist.

        Caller contract: the event has triggered, every waiter has
        already resumed, and no other process holds a reference — the
        object is reused (and reset) by the next :meth:`acquire_event`.
        """
        if ev._waiters:
            raise SimulationError(
                f"cannot recycle event {ev.name!r}: waiters still attached"
            )
        self._event_pool.append(ev)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new process; it takes its first step at the current time."""
        proc = Process(self, gen, name=name)
        self._schedule(self.now, proc._step)
        self.processes_spawned += 1
        if self._c_spawned is not None:
            self._c_spawned.value += 1.0
        return proc

    def spawn_all(self, gens: Iterable[Generator]) -> list[Process]:
        return [self.spawn(g) for g in gens]

    def _crash(self, exc: BaseException) -> None:
        if self._crashed is None:
            self._crashed = exc

    # -- execution ---------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains or ``until`` is reached.

        Returns the final simulation time.  An exception that escapes a
        process with no waiter aborts the run and is re-raised here.
        """
        heap = self._heap
        dispatched = self._c_dispatched
        profile_every = self._profile_every
        n_disp = 0
        wall0 = _time.perf_counter()
        self.run_slices += 1
        try:
            while heap:
                time, _seq, fn, args = heap[0]
                if until is not None and time > until:
                    self.now = until
                    break
                heapq.heappop(heap)
                self.now = time
                if self._trace is not None:
                    self._trace(time, getattr(fn, "__qualname__", repr(fn)))
                if dispatched is not None:
                    dispatched.value += 1.0
                n_disp += 1
                if profile_every and n_disp % profile_every == 0:
                    t0 = _time.perf_counter()
                    fn(*args)
                    self._profile_note(fn, _time.perf_counter() - t0)
                else:
                    fn(*args)
                if self._crashed is not None:
                    exc, self._crashed = self._crashed, None
                    raise exc
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self.events_dispatched += n_disp
            self.run_wall_s += _time.perf_counter() - wall0
            # keep the gauges truthful even when a crashed process re-raises
            if self._g_now is not None:
                self._g_now.set(self.now)
                g = self.obs.metrics.gauge("sim.max_heap_depth")
                if self.max_heap_depth > g.value:
                    g.set(float(self.max_heap_depth))
        return self.now

    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    # -- kernel introspection (flight-recorder pillar 2) --------------
    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (the FIFO tie-break sequence)."""
        return self._seq

    def event_stats(self) -> dict:
        """Always-on kernel totals; available with or without a bundle."""
        return {
            "events_scheduled": self.events_scheduled,
            "events_dispatched": self.events_dispatched,
            "processes_spawned": self.processes_spawned,
            "processes_finished": self.processes_finished,
            "max_heap_depth": self.max_heap_depth,
            "pending_events": len(self._heap),
            "wakeups_coalesced": self.wakeups_coalesced,
            "events_pooled": self.events_pooled,
            "run_slices": self.run_slices,
            "run_wall_s": self.run_wall_s,
            "events_per_s": (
                self.events_dispatched / self.run_wall_s if self.run_wall_s > 0 else 0.0
            ),
            "now": self.now,
        }

    def _profile_note(self, fn: Callable, wall_s: float) -> None:
        owner = getattr(fn, "__self__", None)
        if isinstance(owner, Process):
            label = owner.name
        else:
            label = getattr(fn, "__qualname__", repr(fn))
        label = _DIGITS.sub("#", label)
        acc = self._profile_acc.get(label)
        if acc is None:
            self._profile_acc[label] = [1, wall_s]
        else:
            acc[0] += 1
            acc[1] += wall_s

    def profile_stats(self) -> dict[str, dict]:
        """Sampled per-label wall time (requires ``profile=``), sorted by label.

        With ``profile=n`` each label's ``est_events`` / ``est_wall_s``
        scale the samples back up by ``n``; with ``profile=True`` they
        equal the measured values.
        """
        every = self._profile_every or 1
        return {
            label: {
                "samples": samples,
                "wall_s": wall,
                "est_events": samples * every,
                "est_wall_s": wall * every,
            }
            for label, (samples, wall) in sorted(self._profile_acc.items())
        }
