"""Lightweight online statistics for simulation instrumentation.

.. deprecated::
    :class:`Counter` and :class:`Gauge` here are the legacy per-component
    stores.  New instrumentation should use the cross-cutting
    :class:`repro.obs.MetricsRegistry` (labelled counters/gauges/
    histograms, deterministic job reports).  Both classes accept a
    ``registry``/``prefix`` pair so existing call sites mirror their
    updates into an active registry without any caller changes — direct
    dict-style access (``counter["key"]``, ``as_dict()``) keeps working
    as a thin back-compat shim.
"""

from __future__ import annotations

import math
from typing import Optional


class Counter:
    """Named monotone counters (events, bytes, retries ...).

    When ``registry`` (a :class:`repro.obs.MetricsRegistry`) is given,
    every ``add`` is mirrored to ``registry.counter(prefix + key,
    **labels)`` — so one component-local store can double as the obs
    source of truth instead of double-booking into both.
    """

    def __init__(self, registry=None, prefix: str = "", labels: Optional[dict] = None) -> None:
        self._counts: dict[str, float] = {}
        self._registry = registry
        self._prefix = prefix
        self._labels = dict(labels) if labels else {}

    def add(self, key: str, amount: float = 1.0) -> None:
        self._counts[key] = self._counts.get(key, 0.0) + amount
        if self._registry is not None:
            self._registry.counter(self._prefix + key, **self._labels).inc(amount)

    #: alias matching :class:`repro.obs.metrics.Counter`
    inc = add

    def __getitem__(self, key: str) -> float:
        return self._counts.get(key, 0.0)

    def as_dict(self) -> dict[str, float]:
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counts.items()))
        return f"Counter({inner})"


class Gauge:
    """Named instantaneous values with set/inc/dec (non-monotone).

    The keyed sibling of :class:`Counter` for queue depths, open-handle
    counts, watermarks...  Mirrors into ``registry.gauge(prefix + key,
    **labels)`` when bound to a :class:`repro.obs.MetricsRegistry`.
    """

    def __init__(self, registry=None, prefix: str = "", labels: Optional[dict] = None) -> None:
        self._values: dict[str, float] = {}
        self._registry = registry
        self._prefix = prefix
        self._labels = dict(labels) if labels else {}

    def set(self, key: str, value: float) -> None:
        self._values[key] = float(value)
        if self._registry is not None:
            self._registry.gauge(self._prefix + key, **self._labels).set(value)

    def inc(self, key: str, amount: float = 1.0) -> None:
        self.set(key, self._values.get(key, 0.0) + amount)

    def dec(self, key: str, amount: float = 1.0) -> None:
        self.set(key, self._values.get(key, 0.0) - amount)

    def __getitem__(self, key: str) -> float:
        return self._values.get(key, 0.0)

    def as_dict(self) -> dict[str, float]:
        return dict(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._values.items()))
        return f"Gauge({inner})"


class WelfordStat:
    """Streaming mean/variance via Welford's algorithm (numerically stable)."""

    __slots__ = ("n", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


class TimeWeightedValue:
    """Time-weighted average of a piecewise-constant signal (queue depth...)."""

    __slots__ = ("_value", "_last_time", "_area", "_start")

    def __init__(self, initial: float = 0.0, start_time: float = 0.0) -> None:
        self._value = initial
        self._last_time = start_time
        self._start = start_time
        self._area = 0.0

    def update(self, now: float, value: float) -> None:
        if now < self._last_time:
            raise ValueError("time went backwards")
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value

    @property
    def current(self) -> float:
        return self._value

    def average(self, now: Optional[float] = None) -> float:
        now = self._last_time if now is None else now
        span = now - self._start
        if span <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_time)
        return area / span
