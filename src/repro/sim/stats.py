"""Lightweight online statistics for simulation instrumentation."""

from __future__ import annotations

import math
from typing import Optional


class Counter:
    """Named monotone counters (events, bytes, retries ...)."""

    def __init__(self) -> None:
        self._counts: dict[str, float] = {}

    def add(self, key: str, amount: float = 1.0) -> None:
        self._counts[key] = self._counts.get(key, 0.0) + amount

    def __getitem__(self, key: str) -> float:
        return self._counts.get(key, 0.0)

    def as_dict(self) -> dict[str, float]:
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counts.items()))
        return f"Counter({inner})"


class WelfordStat:
    """Streaming mean/variance via Welford's algorithm (numerically stable)."""

    __slots__ = ("n", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


class TimeWeightedValue:
    """Time-weighted average of a piecewise-constant signal (queue depth...)."""

    __slots__ = ("_value", "_last_time", "_area", "_start")

    def __init__(self, initial: float = 0.0, start_time: float = 0.0) -> None:
        self._value = initial
        self._last_time = start_time
        self._start = start_time
        self._area = 0.0

    def update(self, now: float, value: float) -> None:
        if now < self._last_time:
            raise ValueError("time went backwards")
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value

    @property
    def current(self) -> float:
        return self._value

    def average(self, now: Optional[float] = None) -> float:
        now = self._last_time if now is None else now
        span = now - self._start
        if span <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_time)
        return area / span
