"""Replication tradeoffs for long-running write-mostly applications
(report §4.2.4: Michigan/UCSC "models and tools to predict application
server utilization and reliability for a given storage replication
strategy", using discrete event simulation).

A write-mostly application runs against a replicated storage service:
more replicas survive more failures (fewer application stalls waiting
for data recovery) but cost write fan-out bandwidth.  The model predicts
*application utilization* (useful fraction of wall-clock) and *service
availability* across replication degrees, exposing the optimum the
papers identify.
"""

from repro.replication.model import (
    ReplicationConfig,
    ReplicationOutcome,
    simulate_replicated_run,
    sweep_replication,
)

__all__ = [
    "ReplicationConfig",
    "ReplicationOutcome",
    "simulate_replicated_run",
    "sweep_replication",
]
