"""Discrete-event model of an application over replicated storage."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ReplicationConfig:
    """One deployment point.

    The application writes continuously at ``write_Bps``; each of ``r``
    replicas absorbs a full copy, out of ``server_Bps`` per server and
    ``n_servers`` servers total (so fan-out eats aggregate bandwidth).
    Servers fail (exponential, ``server_mttf_s``) and re-replicate from
    survivors in ``recover_s``; the application *stalls* whenever fewer
    than one replica of its data is healthy.
    """

    replicas: int = 2
    n_servers: int = 12
    server_Bps: float = 100e6
    write_Bps: float = 300e6
    server_mttf_s: float = 30 * 86400.0
    recover_s: float = 3600.0
    #: probability a failure is *correlated* (rack/PDU event) and takes a
    #: second replica down simultaneously — the report's "probability
    #: distributions for storage system failure and correlated failure"
    correlated_prob: float = 0.0

    def __post_init__(self) -> None:
        if not 1 <= self.replicas <= self.n_servers:
            raise ValueError("need 1 <= replicas <= n_servers")
        if min(self.server_Bps, self.write_Bps, self.server_mttf_s, self.recover_s) <= 0:
            raise ValueError("rates and times must be positive")
        if not 0.0 <= self.correlated_prob <= 1.0:
            raise ValueError("correlated_prob must be a probability")


@dataclass
class ReplicationOutcome:
    replicas: int
    utilization: float        # useful app fraction of wall-clock
    availability: float       # fraction of time >= 1 replica healthy
    data_loss_events: int
    write_bandwidth_fraction: float  # share of aggregate b/w eaten by fan-out


def simulate_replicated_run(
    cfg: ReplicationConfig,
    duration_s: float,
    rng: np.random.Generator,
) -> ReplicationOutcome:
    """Monte-Carlo run of the replica group holding the app's hot data.

    The app's data lives on ``cfg.replicas`` servers.  A failed replica
    recovers after ``recover_s`` (re-replication from a survivor).  If
    *all* replicas are simultaneously down, that is a data-loss event:
    the app restarts from its last externalized state after a full
    recovery (costing another ``recover_s``).
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    r = cfg.replicas
    # write throttling: fan-out must fit in aggregate server bandwidth
    demand = cfg.write_Bps * r
    supply = cfg.server_Bps * cfg.n_servers
    write_fraction = min(1.0, demand / supply)
    throughput_scale = min(1.0, supply / demand)
    # replica up/down processes
    down_until = np.zeros(r)
    next_fail = rng.exponential(cfg.server_mttf_s, size=r)
    t = 0.0
    stalled = 0.0
    losses = 0
    while t < duration_s:
        next_event = min(next_fail.min(), duration_s)
        t = next_event
        if t >= duration_s:
            break
        i = int(np.argmin(next_fail))
        # replica i fails now; recovery window
        down_until[i] = t + cfg.recover_s
        next_fail[i] = down_until[i] + rng.exponential(cfg.server_mttf_s)
        # correlated event: a shared rack/PDU takes a sibling replica too
        if r > 1 and cfg.correlated_prob > 0 and rng.random() < cfg.correlated_prob:
            sibling = (i + 1 + int(rng.integers(0, r - 1))) % r
            if down_until[sibling] <= t:
                down_until[sibling] = t + cfg.recover_s
                next_fail[sibling] = down_until[sibling] + rng.exponential(cfg.server_mttf_s)
        healthy = int((down_until <= t).sum())  # the failed one is already marked
        if healthy <= 0:
            losses += 1
            stalled += cfg.recover_s  # app halts for a full restore
        # overlapping single-replica repair is transparent (writes degrade
        # but survive): charged only as bandwidth fraction, not stall
    availability = 1.0 - losses * cfg.recover_s / duration_s
    utilization = max(0.0, (1.0 - stalled / duration_s)) * throughput_scale
    return ReplicationOutcome(
        replicas=r,
        utilization=utilization,
        availability=max(0.0, availability),
        data_loss_events=losses,
        write_bandwidth_fraction=write_fraction,
    )


def sweep_replication(
    base: ReplicationConfig,
    duration_s: float,
    seed: int = 0,
    max_replicas: int | None = None,
) -> list[ReplicationOutcome]:
    """Evaluate replication degrees 1..max on identical failure draws."""
    out = []
    top = max_replicas or base.n_servers // 2
    for r in range(1, top + 1):
        cfg = ReplicationConfig(
            replicas=r,
            n_servers=base.n_servers,
            server_Bps=base.server_Bps,
            write_Bps=base.write_Bps,
            server_mttf_s=base.server_mttf_s,
            recover_s=base.recover_s,
            correlated_prob=base.correlated_prob,
        )
        rng = np.random.default_rng(seed)  # common random numbers
        out.append(simulate_replicated_run(cfg, duration_s, rng))
    return out
