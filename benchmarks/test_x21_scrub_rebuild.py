"""X21 — background scrub & throttled rebuild under correlated failures.

The durability argument of the petascale-storage report, measured end to
end: an rs:4+2 population on a leaf/spine fabric suffers a LANL-style
*correlated* burst trace — every ~30 s one rack takes a leaf blackout
plus a two-server crash burst whose disks are wiped
(``repro.faults.FaultSchedule.from_interrupt_trace`` with
``kind="domain_burst"``).  Each burst alone destroys at most ``m``
shares of any group; survival is decided *between* bursts:

* scrubber **on** (``repro.scrub``) — every lost share is rebuilt to a
  healthy server before the next burst lands: zero data loss, and the
  health samples taken just before each burst show full redundancy
  restored every time;
* scrubber **off** — losses accumulate silently until some group
  crosses the tolerance: permanent data loss, same trace, same seed.

The measured repair times then feed the closed-form Markov model
(:func:`repro.erasure.reliability.mttdl_rs`): scrubbing shrinks MTTR
from ~the run horizon to seconds, which multiplies MTTDL by the square
of the ratio (m=2) — the quantitative version of "scrub or lose data".
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.erasure.reliability import mttdl_rs
from repro.scrub.driver import K, M, ScrubRunParams, run_scrub_rebuild

SEED = 0
SWEEP_SEEDS = (0, 1, 2, 3, 4)


def run_pair(seed: int):
    """One seed, both legs: identical trace, scrubber on vs off."""
    on = run_scrub_rebuild(seed=seed, scrub_on=True)
    off = run_scrub_rebuild(seed=seed, scrub_on=False)
    return on, off


def mttdl_pair(on, off):
    """Closed-form MTTDL (hours) with measured vs unbounded repair.

    Empirical MTTF: server-hours divided by disk losses on the trace.
    With the scrubber the MTTR is the measured mean group repair time;
    without it a lost share stays lost for the rest of the run, so the
    mean residence is ~half the horizon.
    """
    p = ScrubRunParams()
    mttf_h = (p.n_servers * on.horizon_s / 3600.0) / max(on.total_disk_losses, 1)
    mttr_on_h = float(np.mean(on.repair_times_s)) / 3600.0
    mttr_off_h = (off.horizon_s / 2.0) / 3600.0
    return (
        mttdl_rs(mttf_h, mttr_on_h, K, M),
        mttdl_rs(mttf_h, mttr_off_h, K, M),
    )


def test_x21_scrub_vs_no_scrub(run_once, job_observability):
    on, off = run_once(run_pair, SEED)
    mttdl_on, mttdl_off = mttdl_pair(on, off)
    print_table(
        f"X21: correlated burst trace, scrub on vs off (seed {SEED})",
        ["metric", "scrub on", "scrub off"],
        [
            ["stripe groups", on.groups, off.groups],
            ["disk losses injected", on.total_disk_losses, off.total_disk_losses],
            ["data loss", on.data_loss, off.data_loss],
            ["unrecoverable groups", on.unrecoverable, off.unrecoverable],
            ["degraded at end", on.degraded_end, off.degraded_end],
            ["degraded before bursts", str(on.degraded_at_burst),
             str(off.degraded_at_burst)],
            ["stripes rebuilt", int(on.stripes_rebuilt), int(off.stripes_rebuilt)],
            ["rebuild bytes", int(on.rebuild_bytes), 0],
            ["mean repair (s)", f"{np.mean(on.repair_times_s):.2f}", "-"],
            ["throttle occupancy", f"{on.throttle_occupancy:.4f}", "-"],
            ["spine bytes", on.spine_bytes, off.spine_bytes],
            ["foreground writes", on.foreground_writes, off.foreground_writes],
            ["MTTDL (h, closed form)", f"{mttdl_on:.3g}", f"{mttdl_off:.3g}"],
        ],
        widths=[24, 16, 16],
    )
    # the acceptance criterion: with the scrubber the same correlated
    # trace completes with ZERO data loss, and the samples taken just
    # before each burst show redundancy fully restored in between
    assert not on.data_loss and on.unrecoverable == 0
    assert on.degraded_end == 0
    assert on.degraded_at_burst == [0] * len(on.degraded_at_burst)
    # the rebuild pipeline genuinely ran: stripes rebuilt, bytes moved,
    # spans traced, repairs measured, fabric shared with the foreground
    assert on.stripes_rebuilt > 0 and on.rebuild_bytes > 0
    assert on.rebuild_spans > 0
    assert len(on.repair_times_s) == on.stripes_rebuilt
    assert 0.0 < on.throttle_occupancy < 1.0
    assert on.spine_bytes > 0 and on.foreground_writes > 0
    # without the scrubber the very same trace loses data
    assert off.data_loss and off.unrecoverable > 0
    assert off.stripes_rebuilt == 0 and off.rebuild_spans == 0
    # and the closed-form model agrees on the magnitude: shrinking MTTR
    # from ~minutes to ~seconds multiplies MTTDL by (mttr ratio)^m
    assert mttdl_on > 100.0 * mttdl_off


@pytest.mark.slow
def test_x21_seed_sweep(job_observability):
    """The survival split holds across burst traces, not just one seed."""
    rows = []
    for seed in SWEEP_SEEDS:
        on, off = run_pair(seed)
        mttdl_on, mttdl_off = mttdl_pair(on, off)
        rows.append(
            [seed, on.unrecoverable, off.unrecoverable,
             int(on.stripes_rebuilt), f"{np.mean(on.repair_times_s):.2f}",
             f"{mttdl_on / mttdl_off:.3g}"]
        )
        assert not on.data_loss and on.unrecoverable == 0, seed
        assert on.degraded_at_burst == [0] * len(on.degraded_at_burst), seed
        assert on.degraded_end == 0, seed
        assert off.data_loss and off.unrecoverable > 0, seed
    print_table(
        "X21 sweep: zero loss with scrub, guaranteed loss without",
        ["seed", "unrec on", "unrec off", "rebuilt", "repair s", "MTTDL gain"],
        rows,
        widths=[6, 10, 11, 9, 10, 12],
    )
