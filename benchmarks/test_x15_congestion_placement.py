"""X15 — congestion-aware placement vs blind round-robin under hot ports.

The placement study (report §4.2.3) scores strategies on load balance
and migration cost, but the finite-buffer fabric (X14) shows the real
cost of a bad layout: a chunk assigned to a switch port that is already
hot suffers tail drops and full-window RTOs, and the whole write stalls
behind it.  This bench closes the loop measured end-to-end: two hot
server ports carry skewed background traffic (an external tenant —
rebuild or scrub flows — converging on them through the shared switch),
while a foreground client writes a stream of new files.

* ``placement=None`` (blind round-robin): 1/4 of the files land on the
  two hot ports and each such write eats one or more 200 ms RTOs;
* ``placement="congestion"``: the strategy reads the per-port
  ``net.fabric.*`` occupancy/drop metrics back from the obs registry
  (EWMA-smoothed via ``FabricFeedback``) and steers new chunks onto
  cold ports, recovering most of the lost goodput.

Per-port drop counters in the job report confirm the mechanism: under
round-robin the hot ports show foreground drop spikes and the cold
ports none; with congestion-aware placement the foreground stops
feeding the hot ports entirely.
"""

import pytest

from benchmarks.conftest import print_table
from repro.net.fabric import FabricParams
from repro.pfs.params import PFSParams
from repro.pfs.system import SimPFS
from repro.sim import Simulator, Timeout

pytestmark = pytest.mark.slow

N_SERVERS = 8
BUFFER_PKTS = 64
HOT_SERVERS = (0, 1)
BG_FLOWS_PER_PORT = 2
BG_BYTES = 4 << 20
N_FILES = 48
FILE_BYTES = 64 * 1024
WARMUP_S = 0.02


def _drops_by_port(obs) -> dict[str, float]:
    counters = obs.metrics.snapshot()["counters"]
    out = {}
    for i in range(N_SERVERS):
        out[f"server{i}"] = counters.get(
            f"net.fabric.drops_pkts{{port=server{i}}}", 0.0
        )
    return out


def _run_skewed(placement, obs):
    """Foreground goodput (MB/s) writing new files while background flows
    keep HOT_SERVERS' switch ports saturated.  Returns (goodput_MBps,
    per-port foreground-window drop deltas, hot-chunk fraction, diversions)."""
    fabric = FabricParams(
        name=f"1GE-{BUFFER_PKTS}pkt", buffer_pkts=BUFFER_PKTS, seed=11
    )
    params = PFSParams(
        n_servers=N_SERVERS,
        stripe_unit=FILE_BYTES,
        fabric=fabric,
        placement=placement,
    )
    sim = Simulator()
    pfs = SimPFS(sim, params)
    live = {"bg": True}

    def background(server: int):
        # an external tenant's flows convergent on one switch output port;
        # not placement-controlled — the skew the foreground must dodge
        while live["bg"]:
            yield from pfs.topology.to_server(server, BG_BYTES)

    for s in HOT_SERVERS:
        for _ in range(BG_FLOWS_PER_PORT):
            sim.spawn(background(s))

    window = {}

    def foreground():
        yield Timeout(WARMUP_S)  # the hot ports are visible in the metrics
        window["start"] = sim.now
        for i in range(N_FILES):
            path = f"/out/f{i}"
            yield from pfs.op_create(0, path)
            yield from pfs.op_write(0, path, 0, FILE_BYTES)
        window["end"] = sim.now
        live["bg"] = False

    before = _drops_by_port(obs)
    sim.spawn(foreground())
    sim.run()
    after = _drops_by_port(obs)
    drops = {p: after[p] - before[p] for p in after}
    goodput = N_FILES * FILE_BYTES / (window["end"] - window["start"]) / 1e6
    if pfs.placement is None:
        servers = [f % N_SERVERS for f in range(N_FILES)]  # legacy shift layout
        diversions = 0
    else:
        servers = list(pfs.placement._chunk_server.values())
        diversions = pfs.placement.strategy.diversions
    hot_fraction = sum(s in HOT_SERVERS for s in servers) / len(servers)
    return goodput, drops, hot_fraction, diversions


def run_x15(obs):
    rows = {}
    for label, placement in (("round-robin", None), ("congestion", "congestion")):
        rows[label] = _run_skewed(placement, obs)
    return rows


def test_x15_congestion_placement(run_once, job_observability):
    rows = run_once(run_x15, job_observability)
    table = []
    for label, (goodput, drops, hot_frac, diversions) in rows.items():
        hot = sum(drops[f"server{s}"] for s in HOT_SERVERS)
        cold = sum(
            drops[f"server{s}"] for s in range(N_SERVERS) if s not in HOT_SERVERS
        )
        table.append(
            [label, f"{goodput:.2f}", f"{hot_frac:.3f}", int(hot), int(cold), diversions]
        )
    print_table(
        f"X15: foreground goodput under {len(HOT_SERVERS)} hot ports "
        f"({BUFFER_PKTS}-pkt buffers)",
        ["placement", "MB/s", "hot frac", "hot drops", "cold drops", "diverted"],
        table,
        widths=[13, 10, 10, 11, 12, 10],
    )
    g_rr, drops_rr, hot_rr, _ = rows["round-robin"]
    g_ca, drops_ca, hot_ca, diverted = rows["congestion"]
    # the headline: congestion-aware placement recovers the goodput blind
    # round-robin loses to tail drops at the hot ports
    assert g_ca >= 1.5 * g_rr, (g_ca, g_rr)
    # mechanism (placement): round-robin blindly lands 1/4 of the files on
    # the hot ports; feedback steers nearly all chunks off them
    assert hot_rr == pytest.approx(len(HOT_SERVERS) / N_SERVERS)
    assert hot_ca < 0.10
    assert diverted >= int(0.8 * hot_rr * N_FILES)
    # mechanism (fabric): the per-port drop counters localize the damage —
    # hot ports drop, cold ports stay clean in both runs (diverted traffic
    # must not create a new hotspot)
    hot_drops_rr = sum(drops_rr[f"server{s}"] for s in HOT_SERVERS)
    cold_drops_rr = sum(
        drops_rr[f"server{s}"] for s in range(N_SERVERS) if s not in HOT_SERVERS
    )
    cold_drops_ca = sum(
        drops_ca[f"server{s}"] for s in range(N_SERVERS) if s not in HOT_SERVERS
    )
    assert hot_drops_rr > 100 * max(1.0, cold_drops_rr)
    assert cold_drops_ca <= cold_drops_rr + BUFFER_PKTS
    # the counters driving the decision are in the job report
    snap = job_observability.metrics.snapshot()
    assert any(k.startswith("net.fabric.drops_pkts{") for k in snap["counters"])
    assert any(k.startswith("net.fabric.occupancy_pkts{") for k in snap["gauges"])
