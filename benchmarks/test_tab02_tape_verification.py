"""Tape verification statistics (§5.2.3) — the NERSC media campaign.

Report: 23,820 cartridges read end-to-end over 2009-2010; 13 tapes had
unreadable data (99.945% fully readable); 14 files / <100 GB lost; the
worst tapes needed 3-5 read passes.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.tape import NERSC_GENERATIONS, run_verification_campaign


def run_tab2():
    # several seeds: the campaign statistic, not one lucky draw
    return [
        run_verification_campaign(rng=np.random.default_rng(seed))
        for seed in (1, 2, 3, 4, 5)
    ]


def test_tab02_tape_verification(run_once):
    reports = run_once(run_tab2)
    rows = [
        [i + 1, r.tapes_read, r.tapes_with_loss, f"{r.full_readability:.3%}",
         r.files_lost, f"{r.bytes_lost / 1e9:.1f} GB", r.max_read_passes]
        for i, r in enumerate(reports)
    ]
    print_table(
        "Tape verification campaign (5 seeds)",
        ["run", "tapes", "with loss", "readable", "files lost", "bytes lost", "max passes"],
        rows,
        widths=[5, 9, 11, 11, 12, 12, 12],
    )
    total = sum(g.count for g in NERSC_GENERATIONS)
    assert total == 23820
    for r in reports:
        assert r.tapes_read == total
        # the report's headline: ~99.95% fully readable, handful of tapes
        assert r.full_readability > 0.998
        assert r.tapes_with_loss < 60
        assert r.files_lost < 100
        assert r.bytes_lost < 200e9
        # worst tapes need multiple passes; appliance flags a superset
        assert 3 <= r.max_read_passes <= 5
        assert r.appliance_flagged >= r.tapes_with_loss
