"""X11 — POSIX HEC extensions (§2.2).

Report: PDSI/SDM/ANL "performed tests on approximations of various POSIX
extensions to demonstrate the performance advantages"; the layout-query
extension was accepted into a future POSIX revision, and group-open
(openg) removes the N-rank open storm.  Plus ScalaTrace loop compression
(§5.4.2) on a checkpoint trace.
"""

from benchmarks.conftest import print_table
from repro.pfs import PFSParams, SimPFS
from repro.sim import Simulator
from repro.tracing.records import TraceEvent, TraceLog
from repro.tracing.scalatrace import compress_log


def _open_storm(n_ranks: int, use_group: bool) -> float:
    sim = Simulator()
    pfs = SimPFS(sim, PFSParams())
    sim.spawn(pfs.op_create(0, "/f"))
    sim.run()
    t0 = sim.now
    if use_group:
        def group():
            yield from pfs.op_group_open(list(range(n_ranks)), "/f")
        sim.spawn(group())
    else:
        def opener(r):
            yield from pfs.op_open(r, "/f")
        for r in range(n_ranks):
            sim.spawn(opener(r))
    return sim.run() - t0


def run_x11():
    rows = []
    for n in (16, 64, 256, 1024):
        storm = _open_storm(n, use_group=False)
        group = _open_storm(n, use_group=True)
        rows.append((n, storm, group, storm / group))
    # ScalaTrace on a strided checkpoint trace
    log = TraceLog()
    n_ranks, steps = 8, 100
    t = 0.0
    for s in range(steps):
        for r in range(n_ranks):
            log.add(TraceEvent(t, r, "write", (s * n_ranks + r) * 4096, 4096))
            t += 1.0
    trace = compress_log(log)
    return rows, trace


def test_x11_hec_posix(run_once):
    rows, trace = run_once(run_x11)
    print_table(
        "openg group-open vs per-rank open storm",
        ["ranks", "storm s", "openg s", "speedup"],
        [[n, s, g, f"{r:.0f}x"] for n, s, g, r in rows],
        widths=[8, 12, 12, 9],
    )
    print(
        f"\n  ScalaTrace: {trace['raw_events']} events -> "
        f"{trace['stored_units']} stored units ({trace['ratio']:.0f}x)"
    )
    # group open is O(1): the speedup grows linearly with rank count
    speedups = [r for _, _, _, r in rows]
    assert all(b > a for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > 100.0
    # trace compression is large and lossless (asserted inside compress_log)
    assert trace["ratio"] > 10.0
