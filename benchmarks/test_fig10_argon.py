"""Fig 10 — Argon performance insulation and co-scheduled timeslices.

Report: timeslicing bounds interference to a ~10% guard band; on striped
storage, co-scheduling the slices delivers ~90% of best case while
uncoordinated slices are far worse.
"""

from benchmarks.conftest import print_table
from repro.argon import (
    RandomWorkload,
    SequentialWorkload,
    coscheduling_experiment,
    shared_fifo,
    shared_timeslice,
)


def run_fig10():
    seq, rnd = SequentialWorkload(), RandomWorkload()
    fifo = shared_fifo(seq, rnd)
    sliced = {
        q: shared_timeslice(seq, rnd, quantum_s=q) for q in (0.02, 0.07, 0.14, 0.25)
    }
    cosched = coscheduling_experiment(n_servers=4, coordinated=True)
    uncoord = coscheduling_experiment(n_servers=4, coordinated=False)
    return fifo, sliced, cosched, uncoord


def test_fig10_argon(run_once):
    fifo, sliced, cosched, uncoord = run_once(run_fig10)
    rows = [["fifo (uninsulated)", f"{fifo['seq_efficiency']:.2f}", f"{fifo['rnd_efficiency']:.2f}"]]
    for q, res in sliced.items():
        rows.append([f"timeslice q={q * 1000:.0f}ms", f"{res['seq_efficiency']:.2f}", f"{res['rnd_efficiency']:.2f}"])
    print_table(
        "Fig 10 (left): fair-share efficiency, streaming vs random job",
        ["scheduler", "seq eff", "rnd eff"],
        rows,
        widths=[22, 10, 10],
    )
    print_table(
        "Fig 10 (right): 4-server striped client, fraction of best case",
        ["slices", "relative"],
        [
            ["co-scheduled", f"{cosched['relative_to_best']:.2f}"],
            ["uncoordinated", f"{uncoord['relative_to_best']:.2f}"],
        ],
        widths=[16, 10],
    )
    # FIFO destroys the streamer's share; Argon restores both above 80%
    assert fifo["seq_efficiency"] < 0.25
    best = sliced[0.14]
    assert best["seq_efficiency"] > 0.8 and best["rnd_efficiency"] > 0.8
    # larger quanta help the streamer
    assert sliced[0.25]["seq_efficiency"] > sliced[0.02]["seq_efficiency"]
    # co-scheduling near 90% of best case; uncoordinated far worse
    assert cosched["relative_to_best"] > 0.85
    assert uncoord["relative_to_best"] < 0.6 * cosched["relative_to_best"]
