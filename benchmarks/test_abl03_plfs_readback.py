"""Ablation — PLFS read-back performance (Polte et al., PDSW'09:
"...And eat it too: High read performance in write-optimized HPC I/O
middleware file formats").

The worry about log-structured checkpoints is the read-back; with the
index coalescing per-log runs, PLFS reads stay competitive with a flat
file while its *writes* are an order of magnitude faster.
"""

from benchmarks.conftest import print_table
from repro.pfs import LUSTRE_LIKE
from repro.plfs.simbridge import run_readback, speedup
from repro.workloads import n1_strided


def run_abl3():
    params = LUSTRE_LIKE.with_servers(8)
    pattern = n1_strided(16, 47 * 1024, 12)
    direct_w, plfs_w, w_ratio = speedup(params, pattern)
    direct_r = run_readback(params, pattern, via_plfs=False)
    plfs_r = run_readback(params, pattern, via_plfs=True)
    return direct_w, plfs_w, w_ratio, direct_r, plfs_r


def test_abl03_plfs_readback(run_once):
    direct_w, plfs_w, w_ratio, direct_r, plfs_r = run_once(run_abl3)
    print_table(
        "Write and read-back bandwidth, N-1 strided checkpoint",
        ["phase", "direct MB/s", "PLFS MB/s", "ratio"],
        [
            ["write", f"{direct_w.bandwidth_MBps:.1f}", f"{plfs_w.bandwidth_MBps:.1f}",
             f"{w_ratio:.1f}x"],
            ["read-back", f"{direct_r.bandwidth_MBps:.1f}", f"{plfs_r.bandwidth_MBps:.1f}",
             f"{plfs_r.bandwidth_Bps / direct_r.bandwidth_Bps:.2f}x"],
        ],
        widths=[11, 13, 12, 8],
    )
    # writes: the order-of-magnitude PLFS win
    assert w_ratio > 10.0
    # reads: within a small factor of the flat file (the PDSW'09 point)
    r_ratio = plfs_r.bandwidth_Bps / direct_r.bandwidth_Bps
    assert r_ratio > 0.4
    # net: PLFS wins the checkpoint+restart cycle overall
    cycle_direct = direct_w.makespan_s + direct_r.makespan_s
    cycle_plfs = plfs_w.makespan_s + plfs_r.makespan_s
    assert cycle_plfs < cycle_direct
