"""X5 — Spyglass partitioned metadata search vs database-style scan.

Report (§4.2.2/§5.8): "10-1000 times faster than existing database
systems at metadata search", with partition-local index rebuilds.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.metasearch import FlatScanIndex, PartitionedIndex, parse_query, synth_namespace

pytestmark = pytest.mark.slow

QUERIES = [
    ("project query", "project=3; ext=.h5"),
    ("owner+size", "owner=5; size>1000000"),
    ("subtree", "dir=/proj2; mtime<200"),
    ("recent big files", "size>50000000; mtime>300"),
]


def run_x5():
    records = synth_namespace(120_000, np.random.default_rng(7))
    flat = FlatScanIndex(records)
    part = PartitionedIndex(records)
    rows = []
    for name, text in QUERIES:
        q = parse_query(text)
        hits_f, sf = flat.search(q)
        hits_p, sp = part.search(q)
        assert sorted(x.path for x in hits_f) == sorted(x.path for x in hits_p)
        rows.append(
            (name, len(hits_p), sf.records_scanned, sp.records_scanned,
             sp.prune_ratio, sf.records_scanned / max(sp.records_scanned, 1))
        )
    return rows, len(records)


def test_x05_metadata_search(run_once):
    rows, n = run_once(run_x5)
    print_table(
        f"Spyglass-style search over {n} files",
        ["query", "hits", "scan flat", "scan part", "pruned", "speedup"],
        [[a, b, c, d, f"{e:.0%}", f"{f:.0f}x"] for a, b, c, d, e, f in rows],
        widths=[18, 8, 11, 11, 9, 9],
    )
    speedups = [r[-1] for r in rows]
    # localized queries land in the 10-1000x band the report claims
    assert max(speedups) > 10.0
    assert all(s >= 1.0 for s in speedups)
    # at least half the queries prune >75% of the namespace
    assert sum(1 for r in rows if r[4] > 0.75) >= len(rows) // 2
