"""Fig 5 — effective application utilization under checkpoint-restart.

Report: with balanced storage, utilization of the largest machines 'may
cross under 50% before 2014'; faster storage growth (disks +130%/yr) is
'highly unlikely' but would fix it; process pairs cap utilization at 50%
but remove the checkpoint pressure.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.failure import (
    MachineTrend,
    project_utilization,
    utilization_crossing_year,
)


def run_fig5():
    trend = MachineTrend(chip_doubling_months=24.0)
    years = np.arange(2008, 2019)
    series = {
        scal: project_utilization(trend, years, base_delta_s=900.0, storage_scaling=scal)
        for scal in ("balanced", "disk-only", "aggressive")
    }
    crossing = utilization_crossing_year(trend, 0.5, base_delta_s=900.0)
    return years, series, crossing


def test_fig05_utilization(run_once):
    years, series, crossing = run_once(run_fig5)
    rows = [
        [int(y)] + [f"{series[s][i]:.1%}" for s in ("balanced", "disk-only", "aggressive")]
        for i, y in enumerate(years)
    ]
    print_table(
        "Fig 5: best-achievable utilization by storage growth policy",
        ["year", "balanced", "disk-only", "aggressive"],
        rows,
        widths=[8, 12, 12, 12],
    )
    print(f"\n  balanced-storage 50% crossing: {crossing}")
    bal = series["balanced"]
    # monotone decline; starts healthy
    assert bal[0] > 0.6
    assert np.all(np.diff(bal) <= 1e-9)
    # the report's headline: crossing below 50% in the early 2010s
    assert crossing is not None and 2010.0 <= crossing <= 2016.0
    # disk-only storage growth is strictly worse, aggressive strictly better
    assert np.all(series["disk-only"] <= bal + 1e-12)
    assert np.all(series["aggressive"] >= bal - 1e-12)
    # process pairs stay viable where checkpointing collapses
    assert bal[-1] < 0.45
