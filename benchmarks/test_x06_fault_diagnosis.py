"""X6 — automatic diagnosis of PVFS performance problems (§4.2.6).

Report: on a 20-server cluster with injected faults (rogue hog
processes, blocked/lossy resources), peer comparison gave "at least 66%
correct identification of a server suffering under an injected fault and
essentially no falsely indicated servers".
"""

from benchmarks.conftest import print_table
from repro.diagnosis import PeerComparator, evaluate_detector


def run_x6():
    detector = PeerComparator()
    return evaluate_detector(
        detector, n_trials=30, n_servers=20, n_windows=120, severity=1.5, seed=11
    )


def test_x06_fault_diagnosis(run_once):
    stats = run_once(run_x6)
    rows = [
        ["true positive", f"{stats['true_positive_rate']:.0%}"],
        ["missed", f"{stats['missed_rate']:.0%}"],
        ["misattributed", f"{stats['misattributed_rate']:.0%}"],
        ["false positive (healthy)", f"{stats['false_positive_rate']:.0%}"],
    ] + [
        [f"detect {kind}", f"{rate:.0%}"] for kind, rate in stats["per_fault"].items()
    ]
    print_table(
        "Peer-comparison diagnosis, 20 servers, injected faults",
        ["metric", "rate"],
        rows,
        widths=[26, 8],
    )
    assert stats["true_positive_rate"] >= 0.66   # the report's floor
    assert stats["false_positive_rate"] <= 0.05  # "essentially no" false flags
    assert stats["misattributed_rate"] <= 0.1
    # every injected fault class is detectable
    assert all(rate > 0.5 for rate in stats["per_fault"].values())
