"""X7 — Reed-Solomon RAID and DiskReduce (SNL GPU-RAID; CMU DiskReduce).

Report threads: arbitrary-dimension Reed-Solomon coding for extended
RAID (throughput falls as parity count m grows — the GPU paper's
motivation), and DiskReduce's replication-to-erasure capacity savings
with reliability maintained.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.erasure import (
    ReedSolomon,
    diskreduce_capacity_overhead,
    mttdl_mirrored,
    mttdl_rs,
)

pytestmark = pytest.mark.slow


def run_x7():
    data = bytes(np.random.default_rng(0).integers(0, 256, size=1 << 20, dtype=np.uint8))
    enc_rows = []
    for k, m in ((8, 1), (8, 2), (8, 3), (8, 4)):
        rs = ReedSolomon(k, m)
        t0 = time.perf_counter()
        shares = rs.encode(data)
        dt = time.perf_counter() - t0
        # verify recovery from the worst case: all parity used
        survivors = {i: shares[i] for i in range(m, k + m)}
        assert rs.decode(survivors, data_len=len(data)) == data
        enc_rows.append((f"{k}+{m}", len(data) / dt / 1e6, m))
    mttf, mttr = 1.0e6, 24.0
    rel_rows = [
        ("3-replication", mttdl_mirrored(mttf, mttr) / 8766, diskreduce_capacity_overhead("3-replication")),
        ("RS 8+2", mttdl_rs(mttf, mttr, 8, 2) / 8766, diskreduce_capacity_overhead("rs", 8, 2)),
        ("RS 8+3", mttdl_rs(mttf, mttr, 8, 3) / 8766, diskreduce_capacity_overhead("rs", 8, 3)),
    ]
    return enc_rows, rel_rows


def test_x07_erasure_raid(run_once):
    enc_rows, rel_rows = run_once(run_x7)
    print_table(
        "Reed-Solomon encode throughput (1 MiB blocks)",
        ["code", "MB/s", "parity"],
        [[c, f"{bw:.1f}", m] for c, bw, m in enc_rows],
        widths=[8, 10, 8],
    )
    print_table(
        "DiskReduce: protection vs capacity overhead",
        ["scheme", "MTTDL (years)", "overhead"],
        [[s, f"{y:.3g}", f"{o:.0%}"] for s, y, o in rel_rows],
        widths=[16, 14, 10],
    )
    # encode throughput decreases with parity count (the GPU motivation)
    bws = [bw for _, bw, _ in enc_rows]
    assert bws[0] > bws[-1]
    # RS 8+2 beats 3-replication's MTTDL at an eighth of the overhead
    rep, rs82 = rel_rows[0], rel_rows[1]
    assert rs82[1] > rep[1]
    assert rs82[2] < rep[2] / 4
