"""Fig 8 — PLFS checkpoint bandwidth vs direct N-1 writing.

Report: Chombo ~10x, FLASH ~two orders of magnitude, LANL production
codes 5x-28x, across PanFS/Lustre/GPFS; no penalty for friendly patterns.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.pfs import GPFS_LIKE, LUSTRE_LIKE, PANFS_LIKE
from repro.plfs.simbridge import speedup
from repro.workloads import APP_CATALOG, app_pattern

N_RANKS = 24
N_SERVERS = 8


def run_fig8():
    rng = np.random.default_rng(7)
    rows = []
    ratios = {}
    for key in ("flash", "chombo", "lanl-app1", "s3d"):
        profile = APP_CATALOG[key]
        pattern = app_pattern(profile, N_RANKS, rng)
        for params in (PANFS_LIKE, LUSTRE_LIKE, GPFS_LIKE):
            direct, plfs, ratio = speedup(params.with_servers(N_SERVERS), pattern)
            rows.append(
                [profile.name, params.name, direct.bandwidth_MBps, plfs.bandwidth_MBps, ratio]
            )
            ratios.setdefault(key, []).append(ratio)
    return rows, ratios


def test_fig08_plfs_speedup(run_once):
    rows, ratios = run_once(run_fig8)
    print_table(
        "Fig 8: PLFS checkpoint speedup",
        ["application", "file system", "direct MB/s", "PLFS MB/s", "speedup"],
        rows,
        widths=[20, 14, 13, 12, 10],
    )
    # FLASH: around two orders of magnitude
    assert min(ratios["flash"]) > 30.0
    # Chombo: order-of-magnitude territory
    assert min(ratios["chombo"]) > 10.0
    # LANL production code: the 5x-28x band (we allow some slack)
    assert 5.0 < min(ratios["lanl-app1"]) and max(ratios["lanl-app1"]) < 80.0
    # segmented S3D neither helped nor badly hurt
    assert 0.5 < min(ratios["s3d"]) < max(ratios["s3d"]) < 4.0
    # PLFS never loses by much anywhere
    assert all(r[-1] > 0.5 for r in rows)
