"""Fig 1 — 3D event-trace visualization data (PNNL CVIEW).

Report: per-rank displays of I/O call counts and data volume over time
expose banded, bursty application phases.  We regenerate the matrices
behind the surface plot and assert the burst structure.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.tracing import cview_bins, synth_app_trace


def run_fig1():
    log = synth_app_trace(
        n_ranks=16, n_phases=6, rng=np.random.default_rng(3),
        records_per_phase=24,
    )
    return log, cview_bins(log, n_bins=48)


def test_fig01_trace_viz(run_once):
    log, bins = run_once(run_fig1)
    calls, volume = bins["calls"], bins["bytes"]
    rows = [
        [f"rank {r}", int(calls[r].sum()), f"{volume[r].sum() / 1e6:.1f} MB",
         int((calls[r] > 0).sum())]
        for r in range(calls.shape[0])
    ]
    print_table(
        "Fig 1: CVIEW per-rank I/O activity (48 time bins)",
        ["rank", "calls", "volume", "active bins"],
        rows,
        widths=[10, 10, 12, 13],
    )
    assert calls.shape == (16, 48)
    # conservation: binned counts equal trace totals
    total_ops = len(log.filter(op="read")) + len(log.filter(op="write"))
    assert calls.sum() == total_ops
    assert volume.sum() == log.total_bytes("read") + log.total_bytes("write")
    # burstiness: activity concentrated in a minority of time bins,
    # and bursts aligned across ranks (synchronized phases)
    col = calls.sum(axis=0)
    active = col > 0
    assert active.mean() < 0.5
    per_rank_active = (calls > 0)
    overlap = (per_rank_active.all(axis=0) | (~per_rank_active.any(axis=0))).mean()
    assert overlap > 0.8
