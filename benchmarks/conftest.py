"""Shared helpers for the figure/table reproduction benches.

Every bench regenerates one report artifact: it computes the figure's
data (timed once via ``benchmark.pedantic``), prints the same rows/series
the report shows (visible with ``pytest -s``), and asserts the *shape* —
who wins, by roughly what factor, where crossovers fall.
"""

import json
import os
import re
from pathlib import Path

import pytest

#: set REPRO_RESULTS_DIR to also dump every printed table as JSON
_RESULTS_DIR = os.environ.get("REPRO_RESULTS_DIR", "")


def print_table(title: str, header: list[str], rows: list[list], widths=None) -> None:
    print(f"\n== {title}")
    if widths is None:
        widths = [max(len(str(h)), 12) for h in header]
    line = "".join(str(h).rjust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))
    if _RESULTS_DIR:
        out = Path(_RESULTS_DIR)
        out.mkdir(parents=True, exist_ok=True)
        slug = re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")[:80]
        payload = {
            "title": title,
            "header": header,
            "rows": [[_fmt(v) for v in row] for row in rows],
        }
        (out / f"{slug}.json").write_text(json.dumps(payload, indent=1))


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)


@pytest.fixture
def run_once(benchmark):
    """Run the experiment exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
