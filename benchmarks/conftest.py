"""Shared helpers for the figure/table reproduction benches.

Every bench regenerates one report artifact: it computes the figure's
data (timed once via ``benchmark.pedantic``), prints the same rows/series
the report shows (visible with ``pytest -s``), and asserts the *shape* —
who wins, by roughly what factor, where crossovers fall.
"""

import json
import os
import re
from pathlib import Path

import pytest

from repro import obs as obs_mod
from repro.obs.report import build_report, write_report

#: set REPRO_RESULTS_DIR to also dump every printed table as JSON
#: (plus one per-job observability report per bench)
_RESULTS_DIR = os.environ.get("REPRO_RESULTS_DIR", "")


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-")[:80]


@pytest.fixture(autouse=True)
def job_observability(request):
    """Attach a metrics registry + tracer to every benchmark run.

    Instrumentation is always on (the overhead is part of what the
    benches measure); the Darshan-style job report is written next to
    the printed-table JSON artifacts when ``REPRO_RESULTS_DIR`` is set.
    """
    previous = obs_mod.current()
    o = obs_mod.activate(obs_mod.Observability(name=request.node.name))
    try:
        yield o
    finally:
        if previous is None:
            obs_mod.deactivate()
        else:
            obs_mod.activate(previous)
    if _RESULTS_DIR:
        out = Path(_RESULTS_DIR)
        out.mkdir(parents=True, exist_ok=True)
        report = build_report(o, meta={"bench": request.node.name})
        write_report(report, out / f"{_slug(request.node.name)}.report.json")


def print_table(title: str, header: list[str], rows: list[list], widths=None) -> None:
    print(f"\n== {title}")
    if widths is None:
        widths = [max(len(str(h)), 12) for h in header]
    line = "".join(str(h).rjust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))
    if _RESULTS_DIR:
        out = Path(_RESULTS_DIR)
        out.mkdir(parents=True, exist_ok=True)
        slug = re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")[:80]
        payload = {
            "title": title,
            "header": header,
            "rows": [[_fmt(v) for v in row] for row in rows],
        }
        (out / f"{slug}.json").write_text(json.dumps(payload, indent=1))


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)


@pytest.fixture
def run_once(benchmark):
    """Run the experiment exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
