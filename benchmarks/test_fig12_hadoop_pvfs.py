"""Fig 12 — Hadoop-on-PVFS vs HDFS: shim, readahead, layout exposure.

Report: the simplest shim ran a large text search more than twice as slow
as HDFS; readahead tuning gave a large improvement; exposing the PVFS
layout (so Hadoop schedules work near the data) reached parity.
"""

from benchmarks.conftest import print_table
from repro.dfs import ClusterSpec, GrepJob, HDFSBackend, PVFSShimBackend, run_grep

SPEC = ClusterSpec(n_nodes=16, chunk_bytes=32 << 20)
JOB = GrepJob(n_chunks=96, cpu_s_per_chunk=0.05)


def run_fig12():
    return [
        run_grep(JOB, HDFSBackend(SPEC)),
        run_grep(JOB, PVFSShimBackend(SPEC, readahead_bytes=64 * 1024)),
        run_grep(JOB, PVFSShimBackend(SPEC, readahead_bytes=4 << 20)),
        run_grep(JOB, PVFSShimBackend(SPEC, readahead_bytes=4 << 20, expose_layout=True)),
    ]


def test_fig12_hadoop_pvfs(run_once):
    hdfs, naive, tuned, full = run_once(run_fig12)
    rows = [
        [r.backend, r.makespan_s, r.throughput_MBps, f"{r.locality:.0%}",
         f"{r.makespan_s / hdfs.makespan_s:.2f}x"]
        for r in (hdfs, naive, tuned, full)
    ]
    print_table(
        "Fig 12: grep over 16 nodes, 3 GB input",
        ["backend", "makespan s", "MB/s", "locality", "vs HDFS"],
        rows,
        widths=[26, 12, 10, 10, 9],
    )
    # the naive shim: 'more than twice as slowly'
    assert naive.makespan_s > 2.0 * hdfs.makespan_s
    # readahead: 'a large improvement resulted'
    assert tuned.makespan_s < 0.6 * naive.makespan_s
    # layout exposure: parity with HDFS
    assert full.makespan_s < 1.25 * hdfs.makespan_s
    assert full.locality > 0.8
    # strict ordering of the three shim stages
    assert naive.makespan_s > tuned.makespan_s > full.makespan_s
