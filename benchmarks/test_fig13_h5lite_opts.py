"""Fig 13 — cumulative HDF5 optimization benefits (Chombo & GCRM).

Report: collective buffering + alignment + metadata handling raised
parallel HDF5 performance by up to 33x, close to the file system's
achievable peak.
"""

from benchmarks.conftest import print_table
from repro.h5lite import cumulative_optimizations
from repro.h5lite.perf import CHOMBO_LIKE, GCRM_LIKE
from repro.pfs import LUSTRE_LIKE


def run_fig13():
    params = LUSTRE_LIKE.with_servers(8)
    return {
        cfg.name: cumulative_optimizations(cfg, params)
        for cfg in (CHOMBO_LIKE, GCRM_LIKE)
    }


def test_fig13_h5lite_opts(run_once):
    series = run_once(run_fig13)
    rows = []
    for name, steps in series.items():
        base = steps[0]["bandwidth_MBps"]
        for s in steps:
            rows.append(
                [name, "+" + s["step"] if s["step"] != "baseline" else "baseline",
                 s["bandwidth_MBps"], f"{s['bandwidth_MBps'] / base:.1f}x",
                 s["lock_migrations"]]
            )
    print_table(
        "Fig 13: cumulative write-path optimizations (Lustre-like, 8 servers)",
        ["code", "stack", "MB/s", "vs baseline", "lock migr"],
        rows,
        widths=[14, 13, 10, 13, 11],
    )
    for name, steps in series.items():
        bw = [s["bandwidth_MBps"] for s in steps]
        # every cumulative step helps (or is ~neutral)
        for a, b in zip(bw, bw[1:]):
            assert b > 0.9 * a, (name, bw)
        # the full stack delivers a large multiple of the baseline
        assert bw[-1] > 4.0 * bw[0], (name, bw)
        # and the final configuration eliminated the lock storms
        assert steps[-1]["lock_migrations"] <= steps[0]["lock_migrations"]
