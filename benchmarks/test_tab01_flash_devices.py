"""Table 1 — performance characteristics of the five flash devices.

Report (NERSC, §5.2.2): peak read/write bandwidth and 4K read/write IOPS
for the Intel X25-M, OCZ Colossus, FusionIO ioDrive Duo, TMS RamSan-20,
and Virident tachION, measured with IOZone.
"""

import pytest

from benchmarks.conftest import print_table
from repro.devices import DEVICE_CATALOG, device_model
from repro.workloads.iozone import full_sweep


def run_tab1():
    out = []
    for key, spec in DEVICE_CATALOG.items():
        dev = device_model(key)
        sweep = full_sweep(dev, spec.name, seq_bytes=32 << 20, iops_ops=1200)
        out.append((spec, sweep))
    return out


def test_tab01_flash_devices(run_once):
    results = run_once(run_tab1)
    rows = []
    for spec, sweep in results:
        rows.append(
            [spec.name, spec.connection,
             f"{sweep.seq_read_MBps:.0f}/{spec.read_Bps / 1e6:.0f}",
             f"{sweep.seq_write_MBps:.0f}/{spec.write_Bps / 1e6:.0f}",
             f"{sweep.rand_read_kiops:.1f}/{spec.read_kiops_4k}",
             f"{sweep.rand_write_kiops:.1f}/{spec.write_kiops_4k}"]
        )
    print_table(
        "Table 1: measured/published — bandwidth MB/s and 4K kIOPS",
        ["device", "conn", "rd BW", "wr BW", "rd kIOPS", "wr kIOPS"],
        rows,
        widths=[30, 9, 12, 12, 12, 12],
    )
    for spec, sweep in results:
        # headline numbers match the published table closely
        assert sweep.seq_read_MBps == pytest.approx(spec.read_Bps / 1e6, rel=0.02)
        assert sweep.seq_write_MBps == pytest.approx(spec.write_Bps / 1e6, rel=0.02)
        assert sweep.rand_read_kiops == pytest.approx(spec.read_kiops_4k, rel=0.05)
        # fresh-device random writes may exceed the published sustained
        # figure slightly but stay in band
        assert sweep.rand_write_kiops == pytest.approx(spec.write_kiops_4k, rel=0.35)
    # the table's qualitative structure: PCIe devices dominate SATA
    by = {spec.name: sweep for spec, sweep in results}
    assert by["Virident tachION"].seq_read_MBps > 4 * by["Intel X25-M SATA"].seq_read_MBps
    assert by["Texas Memory Systems RamSan20"].rand_read_kiops > 5 * by["OCZ Colossus SATA"].rand_read_kiops
