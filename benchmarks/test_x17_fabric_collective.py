"""X17 — fabric-aware collective I/O on a shallow-buffer switch.

Two-phase collective I/O is a pair of synchronized fan-ins: the phase-1
shuffle converges every rank's flow on each aggregator's switch port,
and phase 2 converges the aggregators on the storage servers.  On a
2008-era top-of-rack switch (32-packet output buffers, 200 ms min RTO —
the PDSI incast regime) a fabric-blind shuffle is an incast by
construction: the very first round of windows overflows the aggregator
ports, whole windows are lost, and each victim sits dark for an RTO
that is ~2000× the RTT.

The fabric-aware scheme (``repro.collective.aggsel``) never enters that
regime.  It chooses the aggregator count against the port buffer math,
gives each aggregator a stripe-aligned *server column* (phase-2 fan-in
of one per server port, zero shared lock blocks), caps concurrent
shuffle senders per port at ``SwitchPort.safe_fanin``, and paces each
admitted flow to its share of the buffer so the in-flight windows fit
the buffer at once.  The per-port drop/RTO counters confirm the
mechanism: blind schemes rack up drops and full-window timeouts at the
aggregator ports, the fabric-aware run shows exactly zero.

A second test pins the degenerate case: under the (default) ideal
fabric the rewritten engine reproduces the pre-fabric collective
results *bit for bit* — the goldens below were captured from the
historical inline arithmetic.
"""

import pytest

from benchmarks.conftest import print_table
from repro.collective import CollectiveConfig, run_collective_write
from repro.net.fabric import FabricParams
from repro.pfs.params import GPFS_LIKE, PFSParams

N_RANKS = 32
N_AGGREGATORS = 8
BUFFER_PKTS = 32
SCHEMES = ("naive-even", "layout-aware", "fabric-aware")

#: Pre-PR collective makespans under the ideal fabric (exact floats).
#: Key: (params, n_aggregators, layout_aware) → makespan_s.
IDEAL_GOLDENS = {
    ("gpfs4", 2, False): 0.039750954356198756,
    ("gpfs4", 2, True): 0.017974322254996494,
    ("gpfs4", 4, False): 0.08769074548458544,
    ("gpfs4", 4, True): 0.025483284068428005,
    ("gpfs4", 8, False): 0.18357032621426014,
    ("gpfs4", 8, True): 0.04065557538482672,
    ("generic8", 2, False): 0.03184149671860396,
    ("generic8", 2, True): 0.014493632143165593,
    ("generic8", 4, False): 0.07018829095820493,
    ("generic8", 4, True): 0.017715072477218687,
    ("generic8", 8, False): 0.12721696250402018,
    ("generic8", 8, True): 0.025468674147484542,
}


def _golden_params():
    return {"gpfs4": GPFS_LIKE.with_servers(4), "generic8": PFSParams()}


def run_ideal_goldens():
    params = _golden_params()
    out = {}
    for (pname, n, layout_aware) in IDEAL_GOLDENS:
        cfg = CollectiveConfig(n_ranks=4 * n, n_aggregators=n)
        r = run_collective_write(cfg, params[pname], layout_aware=layout_aware)
        out[(pname, n, layout_aware)] = r.makespan_s
    return out


def test_x17_ideal_fabric_bit_identical(run_once):
    """fabric=None collective results match the pre-PR engine exactly."""
    got = run_once(run_ideal_goldens)
    rows = [
        [p, n, "layout" if la else "naive", f"{got[(p, n, la)]:.9f}",
         "ok" if got[(p, n, la)] == want else "DRIFT"]
        for (p, n, la), want in IDEAL_GOLDENS.items()
    ]
    print_table(
        "X17a: ideal-fabric goldens (bit-identical with pre-fabric engine)",
        ["params", "aggs", "scheme", "makespan_s", "check"],
        rows,
        widths=[10, 6, 8, 16, 7],
    )
    for key, want in IDEAL_GOLDENS.items():
        assert got[key] == want, key  # exact — no tolerance


def run_shallow_sweep():
    fabric = FabricParams(name=f"1GE-{BUFFER_PKTS}pkt", buffer_pkts=BUFFER_PKTS)
    params = PFSParams(fabric=fabric)
    cfg = CollectiveConfig(n_ranks=N_RANKS, n_aggregators=N_AGGREGATORS)
    return {s: run_collective_write(cfg, params, scheme=s) for s in SCHEMES}


@pytest.mark.slow
def test_x17_fabric_collective(run_once, job_observability):
    res = run_once(run_shallow_sweep)
    rows = [
        [
            r.scheme, r.n_aggregators, r.fanin_cap or "-",
            f"{r.phase1_s * 1e3:.2f}", f"{r.makespan_s * 1e3:.2f}",
            f"{r.bandwidth_MBps:.1f}",
            r.shuffle_drops_pkts, r.shuffle_rtos, r.lock_migrations,
        ]
        for r in res.values()
    ]
    print_table(
        f"X17b: collective write, {N_RANKS} ranks, {BUFFER_PKTS}-pkt port buffers",
        ["scheme", "aggs", "cap", "p1 ms", "total ms", "MB/s", "drops", "RTOs", "locks"],
        rows,
        widths=[14, 6, 6, 9, 10, 8, 7, 6, 7],
    )
    naive, layout, aware = (res[s] for s in SCHEMES)
    # the headline: fabric awareness beats the best fabric-blind scheme
    assert aware.bandwidth_MBps >= 1.3 * layout.bandwidth_MBps, (aware, layout)
    assert aware.bandwidth_MBps >= 1.3 * naive.bandwidth_MBps, (aware, naive)
    # mechanism: the blind shuffles are incasts — tail drops and
    # full-window RTOs at the aggregator ports; the capped+paced shuffle
    # never overflows a buffer
    for blind in (naive, layout):
        assert blind.shuffle_drops_pkts > 0 and blind.shuffle_rtos > 0, blind
    assert aware.shuffle_drops_pkts == 0 and aware.shuffle_rtos == 0
    # placement: server columns are stripe-aligned — no shared lock blocks
    assert aware.lock_migrations == 0 and layout.lock_migrations == 0
    assert naive.lock_migrations > 0
    # the count rule engaged: thin shuffle slices shrank the fleet
    assert 1 <= aware.n_aggregators <= N_AGGREGATORS
    assert aware.fanin_cap * res["fabric-aware"].plan.phase1_fanin_cap > 0
    # the collective.* instrumentation made it into the job report
    snap = job_observability.metrics.snapshot()
    assert any(k.startswith("collective.aggregators") for k in snap["gauges"])
    assert any(k.startswith("collective.shuffle_bytes") for k in snap["counters"])
