"""Fig 3 — CDF of file sizes across eleven non-archival file systems.

Report (Dayal-08): medians in the KB-MB range, heavy multi-GB tails, and
a wide spread between home-style and scratch-style systems.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.tracing import FS_PROFILES, size_cdf, survey_summary, synth_file_sizes


def run_fig3():
    rng = np.random.default_rng(9)
    surveys = {}
    cdfs = {}
    for name, profile in FS_PROFILES.items():
        sizes = synth_file_sizes(profile, 6000, rng)
        surveys[name] = survey_summary(sizes)
        cdfs[name] = size_cdf(sizes, points=np.logspace(2, 11, 40))
    return surveys, cdfs


def test_fig03_fsstats_cdf(run_once):
    surveys, cdfs = run_once(run_fig3)
    rows = [
        [name, f"{s['median_bytes'] / 1e3:.0f}K", f"{s['p99_bytes'] / 1e6:.0f}M",
         f"{s['frac_under_4k']:.0%}", f"{s['frac_capacity_in_top_1pct']:.0%}"]
        for name, s in surveys.items()
    ]
    print_table(
        "Fig 3: fsstats file-size survey (11 file systems)",
        ["file system", "median", "p99", "<=4K files", "bytes in top 1%"],
        rows,
        widths=[20, 9, 9, 12, 17],
    )
    assert len(surveys) == 11
    medians = [s["median_bytes"] for s in surveys.values()]
    # medians live in the KB..tens-of-MB band and spread by >100x
    assert min(medians) > 1e3 and max(medians) < 1e9
    assert max(medians) / min(medians) > 100
    # every file system's CDF is monotone and heavy-tailed
    for name, (x, f) in cdfs.items():
        assert (np.diff(f) >= 0).all()
        s = surveys[name]
        assert s["p99_bytes"] > 10 * s["median_bytes"], name
    # capacity concentrates in big files on scratch systems
    assert surveys["hpc-scratch1"]["frac_capacity_in_top_1pct"] > 0.15
