"""X9 — object-based SCM data placement (§5.8, UCSC).

Report: "cleaning overhead can be reduced significantly by separating
data, metadata, and access time especially under a read-intensive
workload".
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.scmstore import PLACEMENT_POLICIES, run_mixed_workload


def run_x9():
    out = {}
    for policy in PLACEMENT_POLICIES:
        out[policy] = run_mixed_workload(
            policy,
            np.random.default_rng(7),
            n_segments=48,
            pages_per_segment=64,
            n_reads=10_000,
        )
    return out


def test_x09_scm_cleaning(run_once):
    results = run_once(run_x9)
    rows = [
        [policy, s.host_writes, s.cleaner_moves,
         f"{s.cleaning_overhead:.3f}", f"{s.write_amplification:.2f}"]
        for policy, s in results.items()
    ]
    print_table(
        "SCM object store: cleaning cost by placement policy",
        ["policy", "host writes", "cleaner moves", "moves/write", "write amp"],
        rows,
        widths=[12, 12, 14, 12, 10],
    )
    mixed = results["mixed"].cleaning_overhead
    split_meta = results["split-meta"].cleaning_overhead
    split_all = results["split-all"].cleaning_overhead
    # the report's ordering: each separation step helps, full separation a lot
    assert split_all < 0.5 * mixed
    assert split_meta <= mixed
    assert split_all <= split_meta
    # same host work in every configuration
    writes = {s.host_writes for s in results.values()}
    assert len(writes) == 1
