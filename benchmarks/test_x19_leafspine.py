"""X19 — cross-rack collapse on an oversubscribed leaf/spine fabric.

The flat incast study (Fig 9, X14) blames a *single* switch output
buffer.  Real petascale machines add a second failure surface: racks of
edge links funnel into spine uplinks provisioned at a fraction of the
rack's aggregate bandwidth — 4:1 was the canonical 2008 datacenter
ratio.  A rack-blind workload whose flows all cross the spine then
collapses even though every *edge* port has fan-in 1: the shared uplink
buffer overflows, whole windows are lost, and each victim sits out a
min-RTO while the uplink idles.

The experiment drives the same total byte volume through the same
two-rack, 4:1-oversubscribed :class:`repro.net.fabric.Topology` under
two placements:

* **rack-blind** — every client streams to a server in the *other*
  rack, so all flows share the source leaf's spine uplink;
* **rack-aware** — every client streams to a server in its own rack,
  so flows cross only their destination edge ports (what the
  congestion-aware placement and rack-aligned aggregator selection buy
  at the system layers).

The per-hop counters identify the mechanism, not just the symptom: the
blind run's drops and timeouts concentrate on the ``leaf*.up`` spine
ports while the edge ports stay clean, and the aware run never touches
the spine at all.
"""

from benchmarks.conftest import print_table
from repro.net.fabric import FabricParams, LeafSpineParams, Link, Topology
from repro.sim import Simulator

N_RACKS = 2
N_SERVERS = 8          # 4 per rack
FLOWS_PER_RACK = 4
NBYTES = 4 << 20       # per flow
NIC_BPS = 1e9 / 8 * 0.9
BUFFER_PKTS = 32
OVERSUBSCRIPTION = 4.0


def _fabric():
    return FabricParams(
        name=f"leafspine-{int(OVERSUBSCRIPTION)}to1",
        buffer_pkts=BUFFER_PKTS,
        min_rto_s=0.2,  # the historical 200 ms floor — collapse hurts
        leafspine=LeafSpineParams(
            n_racks=N_RACKS, oversubscription=OVERSUBSCRIPTION
        ),
    )


def _run_placement(rack_aware: bool) -> dict:
    sim = Simulator()
    topo = Topology(
        sim, n_servers=N_SERVERS, client_link=Link(NIC_BPS),
        server_link=Link(NIC_BPS), fabric=_fabric(), name="x19",
    )
    n_flows = 0
    for rack in range(N_RACKS):
        for k in range(FLOWS_PER_RACK):
            client = topo.client_for_rack(rack, k)
            dst_rack = rack if rack_aware else (rack + 1) % N_RACKS
            # one distinct server per flow: edge fan-in stays at 1, so
            # any congestion is the spine's doing
            server = dst_rack * (N_SERVERS // N_RACKS) + k
            assert topo.server_rack(server) == dst_rack
            sim.spawn(
                topo.to_server(server, NBYTES, src_client=client),
                name=f"flow-r{rack}-k{k}",
            )
            n_flows += 1
    makespan = sim.run()
    total = n_flows * NBYTES
    spine = [topo.leaf_up[r].stats() for r in range(N_RACKS)]
    down = [topo.leaf_down[r].stats() for r in range(N_RACKS)]
    edges = [topo.server_ports[s].stats() for s in range(N_SERVERS)]
    return {
        "makespan_s": makespan,
        "goodput_MBps": total / makespan / 1e6,
        "spine_drops": sum(p["drops_pkts"] for p in spine),
        "spine_timeouts": sum(p["timeouts"] for p in spine),
        "downlink_drops": sum(p["drops_pkts"] for p in down),
        "edge_drops": sum(p["drops_pkts"] for p in edges),
        "edge_timeouts": sum(p["timeouts"] for p in edges),
        "spine_bytes": sum(p["bytes"] for p in spine),
    }


def run_x19():
    return {
        "rack-blind": _run_placement(rack_aware=False),
        "rack-aware": _run_placement(rack_aware=True),
    }


def test_x19_leafspine_cross_rack_collapse(run_once):
    res = run_once(run_x19)
    rows = [
        [
            name, f"{r['makespan_s']:.3f}", f"{r['goodput_MBps']:.1f}",
            r["spine_drops"], r["spine_timeouts"],
            r["edge_drops"], r["edge_timeouts"],
        ]
        for name, r in res.items()
    ]
    print_table(
        f"X19: {N_RACKS} racks, {OVERSUBSCRIPTION:.0f}:1 uplinks, "
        f"{BUFFER_PKTS}-pkt buffers, {FLOWS_PER_RACK} flows/rack",
        ["placement", "makespan_s", "MB/s", "sp.drop", "sp.RTO",
         "edge.drop", "edge.RTO"],
        rows,
        widths=[12, 12, 9, 9, 8, 11, 10],
    )
    blind, aware = res["rack-blind"], res["rack-aware"]
    # the headline: rack awareness is >= 1.3x goodput on this fabric
    assert aware["goodput_MBps"] >= 1.3 * blind["goodput_MBps"], (aware, blind)
    # mechanism, per-hop: the blind run collapses *at the spine uplinks*
    # — drops and full-window RTOs land on leaf*.up, not the edge ports
    assert blind["spine_drops"] > 0 and blind["spine_timeouts"] > 0
    assert blind["spine_drops"] > blind["edge_drops"]
    assert blind["spine_timeouts"] > blind["edge_timeouts"]
    # the aware run never crosses the spine and never suffers an RTO —
    # lone edge flows may shed a few fast-retransmit packets as their
    # window probes past the buffer, but no window is ever fully lost
    assert aware["spine_bytes"] == 0
    assert aware["spine_drops"] == 0 and aware["spine_timeouts"] == 0
    assert aware["edge_timeouts"] == 0


def test_x19_lone_cross_rack_flow_degrades_without_collapsing(run_once):
    """Control: a *single* cross-rack flow pays the extra hops (the
    uplink at 4:1 runs at edge rate, and the hops serialize per round)
    but never loses a full window — no RTO, no 200 ms stall.  The
    collapse above is the synchronized *sharing* of the uplink buffer,
    not the hop count."""

    def _run():
        out = {}
        for label, server in (("same-rack", 0), ("cross-rack", 4)):
            sim = Simulator()
            topo = Topology(
                sim, n_servers=N_SERVERS, client_link=Link(NIC_BPS),
                server_link=Link(NIC_BPS), fabric=_fabric(), name="x19c",
            )
            client = topo.client_for_rack(0, 0)
            sim.spawn(
                topo.to_server(server, NBYTES, src_client=client), name="flow"
            )
            makespan = sim.run()
            out[label] = {
                "goodput_MBps": NBYTES / makespan / 1e6,
                "spine_timeouts": sum(
                    topo.leaf_up[r].total_timeouts
                    + topo.leaf_down[r].total_timeouts
                    for r in range(N_RACKS)
                ),
                "spine_bytes": sum(
                    topo.leaf_up[r].total_bytes for r in range(N_RACKS)
                ),
            }
        return out

    res = run_once(_run)
    print_table(
        "X19 control: one flow, same fabric — hops cost bandwidth, not RTOs",
        ["route", "MB/s", "spine RTOs", "spine MB"],
        [[k, f"{r['goodput_MBps']:.1f}", r["spine_timeouts"],
          f"{r['spine_bytes'] / 1e6:.0f}"] for k, r in res.items()],
        widths=[12, 9, 12, 10],
    )
    same, cross = res["same-rack"], res["cross-rack"]
    assert cross["spine_bytes"] > 0 and same["spine_bytes"] == 0
    # orderly degradation: slower than same-rack, but zero full-window
    # losses — nothing like the shared-uplink collapse
    assert cross["spine_timeouts"] == 0
    assert cross["goodput_MBps"] < same["goodput_MBps"]
    assert cross["goodput_MBps"] > 0.2 * same["goodput_MBps"]


if __name__ == "__main__":  # pragma: no cover - manual smoke run
    import json

    print(json.dumps(run_x19(), indent=2))
