"""Fig 11 — flash vs magnetic disk, the report's five findings.

1) flash bandwidth above disk, much more so for reads; 2) random reads
phenomenally above disk's ~100 IOPS; 3) random writes below random
reads, worse under 4 KB; 4) [software-stack variation — see Fig 13];
5) sustained random writing collapses ~10x when the pre-erased pool
depletes.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.devices import Disk, FlashDevice, FlashParams
from repro.workloads import iozone_bandwidth_sweep, iozone_random_iops


def run_fig11():
    flash = FlashDevice(FlashParams(user_blocks=512, overprovision=0.08))
    disk = Disk()
    f_seq = iozone_bandwidth_sweep(flash, total_bytes=32 << 20)
    d_seq = iozone_bandwidth_sweep(disk, total_bytes=32 << 20)
    f_iops = iozone_random_iops(FlashDevice(FlashParams(user_blocks=512)), n_ops=1500)
    d_iops = iozone_random_iops(Disk(), n_ops=400)
    # sub-4K write penalty
    dev = FlashDevice(FlashParams(user_blocks=64))
    dev.write(7)
    t_sub = dev.write_subpage(7, 512)
    t_full = dev.params.program_page_s
    # sustained cliff
    cliff_dev = FlashDevice(FlashParams(user_blocks=256, overprovision=0.07))
    cliff = cliff_dev.sustained_random_write(
        6 * cliff_dev.params.user_pages, np.random.default_rng(4)
    )
    return f_seq, d_seq, f_iops, d_iops, t_sub, t_full, cliff


def test_fig11_flash_vs_disk(run_once):
    f_seq, d_seq, f_iops, d_iops, t_sub, t_full, cliff = run_once(run_fig11)
    print_table(
        "Fig 11: flash vs disk",
        ["metric", "flash", "disk"],
        [
            ["seq read MB/s", f_seq[0], d_seq[0]],
            ["seq write MB/s", f_seq[1], d_seq[1]],
            ["4K rand read kIOPS", f_iops[0], d_iops[0]],
            ["4K rand write kIOPS", f_iops[1], d_iops[1]],
        ],
        widths=[22, 12, 12],
    )
    print(
        f"\n  sub-4K write penalty: {t_sub / t_full:.2f}x a full-page program"
        f"\n  sustained random write: fresh {cliff.fresh_iops:.0f} IOPS -> "
        f"steady {cliff.steady_iops:.0f} IOPS ({cliff.degradation_factor:.1f}x slower, "
        f"WA={cliff.write_amplification:.2f})"
    )
    # (1) bandwidths above disk, reads especially
    assert f_seq[0] > d_seq[0] and f_seq[1] > d_seq[1]
    # (2) random reads orders of magnitude above disk
    assert f_iops[0] > 50 * d_iops[0]
    # (3) random writes below random reads; sub-4K worse still
    assert f_iops[1] < f_iops[0]
    assert t_sub > t_full
    # (5) sustained random write cliff approaching the reported ~10x
    assert cliff.degradation_factor > 3.0
