"""X22 — fluid fabric mode at 100k–1M clients: the scale the exact engine can't reach.

The ROADMAP's metadata-plane and QoS items all want simulated
populations ~1000x the exact windowed engine's comfort zone.  X22
demonstrates the fluid mode (``FabricParams.mode="fluid"``) earning
that reach on the workload that motivated it — a metadata-RPC storm
against one hot server — plus an incast fan-in sweep far past where
per-packet simulation is feasible.

Methodology for the speedup claim: the exact engine's event count on
the hot-server storm is quadratic in the client count (each RTO
generation replays the whole backlog), so running exact mode at 100k
clients is not an option.  We fit ``events = a*n + b*n^2`` on exact
runs at 1k/2k/4k clients, convert events to wall-clock with the
measured us/event from those same runs, and compare the extrapolated
exact wall time against the *measured* fluid wall time.  Acceptance
(ISSUE 10): >= 50x at >= 100k clients.

The fluid makespan itself is pinned against closed-form physics: one
hot server admits ``round_capacity_pkts`` single-packet RPCs per
200 ms RTO generation, so the storm takes ``~ n / capacity * rto``
simulated seconds — at 100k clients the fluid engine reproduces that
to within a fraction of a percent while dispatching ~6 events per
client instead of O(n^2).
"""

import time
from contextlib import contextmanager
from dataclasses import replace

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro import obs as obs_mod
from repro.net.fabric import FabricParams, Link, Topology
from repro.sim import Simulator, Timeout

FAB = FabricParams(name="storm", buffer_pkts=64, min_rto_s=0.2, seed=7)
RPC_BYTES = 512
SERVICE_S = 0.3e-3
BLOCK = 64 * 1024

#: exact-mode anchor sizes for the quadratic event-count fit
FIT_SIZES = (1000, 2000, 4000)


@contextmanager
def _maybe_detached(instrumented: bool):
    """Suspend the active observability bundle when ``instrumented=False``.

    At 100k+ clients the 2-spans-per-flow tracing cost (identical in
    both modes) swamps either engine, so the scale tests measure the
    engine, not the recorder.  The smoke tests keep instrumentation on
    like every other bench.  The Simulator binds its gauges at
    construction, so detaching must happen before ``Simulator()``.
    """
    if instrumented:
        yield
        return
    prev = obs_mod.current()
    obs_mod.deactivate()
    try:
        yield
    finally:
        if prev is not None:
            obs_mod.activate(prev)


def metadata_storm(n_clients: int, n_servers: int, mode: str,
                   instrumented: bool = True):
    """The x20 shape reduced to its fabric core: RPC in, service, RPC out.

    Every client fires at t=0 against ``c % n_servers``; with
    ``n_servers=1`` this is the hot-server storm whose exact-mode event
    count grows quadratically (RTO generations replay the backlog).

    ``instrumented=False`` runs with the span recorder suspended (see
    :func:`_maybe_detached`).
    """
    fabric = replace(FAB, mode=mode)
    with _maybe_detached(instrumented):
        sim = Simulator()
        topo = Topology(sim, n_clients, Link(112e6), Link(112e6), fabric=fabric)
        done = [0]

        def client(c):
            s = c % n_servers
            yield from topo.to_server(s, RPC_BYTES, src_client=c)
            yield Timeout(SERVICE_S)
            yield from topo.to_client(c, RPC_BYTES, src_server=s)
            done[0] += 1

        t0 = time.perf_counter()
        for c in range(n_clients):
            sim.spawn(client(c))
        sim.run()
        wall = time.perf_counter() - t0
    assert done[0] == n_clients
    return {
        "makespan_s": float(sim.now),
        "wall_s": wall,
        "events": sim.event_stats()["events_dispatched"],
    }


def incast_fanin(n_senders: int, mode: str, instrumented: bool = True):
    """Synchronized 64 KiB fan-in to one client port (the Fig-9 shape)."""
    fabric = replace(FAB, mode=mode)
    with _maybe_detached(instrumented):
        sim = Simulator()
        topo = Topology(sim, n_senders, Link(112e6), Link(112e6), fabric=fabric)
        for s in range(n_senders):
            sim.spawn(topo.to_client(0, BLOCK, src_server=s))
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
    port = topo.client_port(0)
    assert port.total_bytes == n_senders * BLOCK  # nothing lost to the model
    return {
        "makespan_s": float(sim.now),
        "goodput_MBps": n_senders * BLOCK / sim.now / 1e6,
        "wall_s": wall,
        "events": sim.event_stats()["events_dispatched"],
    }


def exact_wall_model():
    """Fit exact-mode wall cost: events = a*n + b*n^2, at measured us/event."""
    pts = [metadata_storm(n, 1, "exact", instrumented=False) for n in FIT_SIZES]
    A = np.array([[n, n * n] for n in FIT_SIZES], dtype=float)
    y = np.array([p["events"] for p in pts], dtype=float)
    coef, *_ = np.linalg.lstsq(A, y, rcond=None)
    s_per_event = sum(p["wall_s"] for p in pts) / sum(p["events"] for p in pts)

    def predict_wall_s(n: int) -> float:
        return (coef[0] * n + coef[1] * n * n) * s_per_event

    return predict_wall_s, pts


def test_x22_storm_smoke(job_observability):
    """CI smoke: at 2k clients both modes agree; fluid slashes events."""
    exact = metadata_storm(2000, 1, "exact")
    fluid = metadata_storm(2000, 1, "fluid")
    ratio = fluid["makespan_s"] / exact["makespan_s"]
    print_table(
        "X22 smoke: 2k-client hot-server storm, exact vs fluid",
        ["metric", "exact", "fluid"],
        [
            ["makespan (s)", f"{exact['makespan_s']:.3f}", f"{fluid['makespan_s']:.3f}"],
            ["events dispatched", exact["events"], fluid["events"]],
            ["wall (s)", f"{exact['wall_s']:.2f}", f"{fluid['wall_s']:.2f}"],
            ["makespan ratio", "-", f"{ratio:.4f}"],
        ],
        widths=[20, 12, 12],
    )
    assert abs(ratio - 1.0) <= 0.10, ratio
    # the event gap is quadratic in n — modest at smoke scale, ~100x at 100k
    assert fluid["events"] < exact["events"] / 2


def test_x22_incast_smoke(job_observability):
    """CI smoke: fluid incast tracks exact at 32 senders, runs at 1024."""
    exact = incast_fanin(32, "exact")
    fluid = incast_fanin(32, "fluid")
    ratio = fluid["makespan_s"] / exact["makespan_s"]
    assert abs(ratio - 1.0) <= 0.10, ratio
    big = incast_fanin(1024, "fluid")
    # collapse physics at scale: goodput pinned far below the 112 MB/s
    # line rate by 200 ms RTO stalls, and events stay ~3 per sender
    assert big["goodput_MBps"] < 40.0
    assert big["events"] < 1024 * 8
    print_table(
        "X22 smoke: synchronized incast fan-in",
        ["senders", "mode", "makespan (s)", "goodput (MB/s)", "events"],
        [
            [32, "exact", f"{exact['makespan_s']:.3f}", f"{exact['goodput_MBps']:.1f}", exact["events"]],
            [32, "fluid", f"{fluid['makespan_s']:.3f}", f"{fluid['goodput_MBps']:.1f}", fluid["events"]],
            [1024, "fluid", f"{big['makespan_s']:.3f}", f"{big['goodput_MBps']:.1f}", big["events"]],
        ],
        widths=[8, 6, 13, 15, 9],
    )


@pytest.mark.slow
def test_x22_200k_speedup(run_once, job_observability):
    """The headline: 200k-client storm, >= 50x over extrapolated exact."""
    predict_wall_s, pts = exact_wall_model()
    fluid = run_once(metadata_storm, 200_000, 1, "fluid", instrumented=False)
    exact_wall = predict_wall_s(200_000)
    speedup = exact_wall / fluid["wall_s"]
    # the simulated result itself is pinned by closed-form physics:
    # ceil(n / round_capacity) RTO generations of 200 ms each
    port_cap = 71  # buffer 64 + one RTT of drain at 112 MB/s
    expected = (200_000 // port_cap) * FAB.min_rto_s
    print_table(
        "X22: 200k-client hot-server storm (fluid) vs extrapolated exact",
        ["metric", "value"],
        [
            ["exact events @1k/2k/4k", " / ".join(str(p["events"]) for p in pts)],
            ["fluid makespan (s)", f"{fluid['makespan_s']:.1f}"],
            ["closed-form makespan (s)", f"{expected:.1f}"],
            ["fluid events", fluid["events"]],
            ["fluid wall (s)", f"{fluid['wall_s']:.1f}"],
            ["extrapolated exact wall (s)", f"{exact_wall:.1f}"],
            ["speedup", f"{speedup:.1f}x"],
        ],
        widths=[28, 24],
    )
    assert abs(fluid["makespan_s"] / expected - 1.0) < 0.05
    assert speedup >= 50.0, speedup


@pytest.mark.slow
def test_x22_million_client_storm(job_observability):
    """The ROADMAP target: one million clients in one simulation."""
    fluid = metadata_storm(1_000_000, 1, "fluid", instrumented=False)
    port_cap = 71
    expected = (1_000_000 // port_cap) * FAB.min_rto_s
    print_table(
        "X22: 1M-client hot-server storm (fluid mode)",
        ["metric", "value"],
        [
            ["makespan (s)", f"{fluid['makespan_s']:.1f}"],
            ["closed-form makespan (s)", f"{expected:.1f}"],
            ["events dispatched", fluid["events"]],
            ["events per client", f"{fluid['events'] / 1e6:.2f}"],
            ["wall (s)", f"{fluid['wall_s']:.1f}"],
        ],
        widths=[26, 16],
    )
    assert abs(fluid["makespan_s"] / expected - 1.0) < 0.05
    # ~6 events per client; the exact engine would need O(n^2)
    assert fluid["events"] < 8 * 1_000_000


@pytest.mark.slow
def test_x22_incast_sweep(job_observability):
    """Incast fan-in far past exact-mode feasibility: 1024 -> 8192 senders."""
    rows = []
    results = {}
    for n in (1024, 2048, 4096, 8192):
        r = incast_fanin(n, "fluid", instrumented=False)
        results[n] = r
        rows.append([n, f"{r['makespan_s']:.2f}", f"{r['goodput_MBps']:.1f}",
                     r["events"], f"{r['wall_s']:.2f}"])
    print_table(
        "X22: fluid incast sweep (64 KiB per sender, one receiver)",
        ["senders", "makespan (s)", "goodput (MB/s)", "events", "wall (s)"],
        rows,
        widths=[8, 13, 15, 9, 9],
    )
    # collapse saturates: goodput roughly flat across the sweep while
    # makespan scales linearly with the sender count
    goodputs = [results[n]["goodput_MBps"] for n in (1024, 2048, 4096, 8192)]
    assert max(goodputs) / min(goodputs) < 1.25
    span = results[8192]["makespan_s"] / results[1024]["makespan_s"]
    assert 6.0 < span < 10.0, span  # ~8x senders -> ~8x makespan
