"""X3 — GMC multi-order context prefetching (§5.4.2).

Report: 'GMC uses multi-order analysis using both local and global
context to increase prefetching coverage while maintaining prefetching
accuracy.'
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.prefetch import (
    GMCPrefetcher,
    OrderOnePrefetcher,
    evaluate_prefetcher,
    looping_stream,
    multi_file_stream,
)


def _fresh_streams(seed):
    rng1, rng2 = np.random.default_rng(seed), np.random.default_rng(seed)
    return (
        multi_file_stream(n_files=4, blocks_per_file=16, n_rounds=50, rng=rng1),
        multi_file_stream(n_files=4, blocks_per_file=16, n_rounds=50, rng=rng2),
    )


def run_x3():
    s1, s2 = _fresh_streams(2)
    o1 = evaluate_prefetcher(OrderOnePrefetcher(k=1), s1)
    gmc = evaluate_prefetcher(GMCPrefetcher(max_order=3, k=1), s2)
    # also the easy local loop, where both should do well
    rl1, rl2 = np.random.default_rng(5), np.random.default_rng(5)
    loop1 = evaluate_prefetcher(OrderOnePrefetcher(k=1), looping_stream(40, 8, rl1, noise=0.05))
    loop2 = evaluate_prefetcher(GMCPrefetcher(max_order=3, k=1), looping_stream(40, 8, rl2, noise=0.05))
    return o1, gmc, loop1, loop2


def test_x03_gmc_prefetch(run_once):
    o1, gmc, loop1, loop2 = run_once(run_x3)
    rows = [
        ["cross-file branching", "order-1", f"{o1.coverage:.2f}", f"{o1.accuracy:.2f}"],
        ["cross-file branching", "GMC-3", f"{gmc.coverage:.2f}", f"{gmc.accuracy:.2f}"],
        ["local loop", "order-1", f"{loop1.coverage:.2f}", f"{loop1.accuracy:.2f}"],
        ["local loop", "GMC-3", f"{loop2.coverage:.2f}", f"{loop2.accuracy:.2f}"],
    ]
    print_table(
        "GMC vs single-order context prefetching",
        ["workload", "prefetcher", "coverage", "accuracy"],
        rows,
        widths=[22, 12, 10, 10],
    )
    # coverage up...
    assert gmc.coverage > o1.coverage + 0.15
    # ...while maintaining accuracy
    assert gmc.accuracy >= o1.accuracy - 0.1
    assert gmc.accuracy > 0.6
    # and no regression on the pattern order-1 already handles
    assert loop2.coverage >= loop1.coverage - 0.1
