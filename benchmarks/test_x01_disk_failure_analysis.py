"""X1 — the FAST'07 disk-failure findings (§3.3.1).

Report: no significant infant mortality nor a stable mid-life plateau;
replacement rates grow steadily with age; enterprise- and desktop-class
populations replace at similar rates; observed ARR far exceeds the
datasheet-MTTF-implied AFR.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.failure import annual_replacement_rates, bathtub_deviation, datasheet_afr, synth_drive_population
from repro.failure.analysis import compare_populations, observed_vs_datasheet


def run_x1():
    rng = np.random.default_rng(7)
    ent = synth_drive_population("enterprise-hpc", 6000, 5, rng, drive_class="enterprise")
    desk = synth_drive_population("desktop-isp", 6000, 5, rng, drive_class="desktop")
    arr = annual_replacement_rates(ent)
    return ent, desk, arr, bathtub_deviation(arr), observed_vs_datasheet(ent), compare_populations(ent, desk)


def test_x01_disk_failure_analysis(run_once):
    ent, desk, arr, bath, vs, cmp_ = run_once(run_x1)
    rows = [[f"year {k}", f"{v:.2%}"] for k, v in enumerate(arr)]
    print_table("ARR by drive age (enterprise population)", ["age", "ARR"], rows, widths=[10, 10])
    print(
        f"\n  infant ratio={bath['infant_ratio']:.2f} (bathtub predicts >>1)"
        f"\n  growth fraction={bath['growth_fraction']:.2f}, slope={bath['trend_slope_per_year']:.4f}/yr"
        f"\n  observed ARR={vs['observed_arr']:.2%} vs datasheet AFR={vs['datasheet_afr']:.2%}"
        f" (x{vs['ratio']:.1f})"
        f"\n  enterprise/desktop ARR ratio={cmp_['ratio']:.2f}"
    )
    # no infant-mortality spike
    assert bath["infant_ratio"] < 1.5
    # rates grow with age (no flat mid-life plateau)
    assert bath["trend_slope_per_year"] > 0
    assert bath["growth_fraction"] >= 0.5
    # observed replacement rates dwarf the datasheet expectation
    assert vs["ratio"] > 2.0
    assert datasheet_afr(1e6) < 0.01
    # enterprise ~= desktop
    assert 0.7 < cmp_["ratio"] < 1.4
