"""Fig 14 — sustained 4K random-write IOPS over time, five devices.

Report: behaviour 'seems to depend upon how much extra flash storage is
present on each device'; the PCIe devices sustain random writes for long
periods, the SATA devices degrade hard.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.devices import DEVICE_CATALOG, device_model

pytestmark = pytest.mark.slow


def run_fig14():
    out = {}
    for key in DEVICE_CATALOG:
        dev = device_model(key)
        out[key] = dev.sustained_random_write(
            4 * dev.params.user_pages, np.random.default_rng(17), n_windows=24
        )
    return out


def test_fig14_flash_degradation(run_once):
    results = run_once(run_fig14)
    rows = []
    for key, res in results.items():
        spec = DEVICE_CATALOG[key]
        rows.append(
            [spec.name, f"{res.fresh_iops / 1e3:.1f}", f"{res.steady_iops / 1e3:.2f}",
             f"{res.degradation_factor:.1f}x", f"{res.write_amplification:.2f}",
             f"{spec.overprovision:.0%}"]
        )
    print_table(
        "Fig 14: sustained 4K random writes",
        ["device", "fresh kIOPS", "steady kIOPS", "degradation", "write amp", "spare"],
        rows,
        widths=[30, 12, 13, 12, 10, 7],
    )
    # every device degrades once the pre-erased pool is gone
    for res in results.values():
        assert res.degradation_factor > 1.3
        assert res.write_amplification > 1.0
        # the time series itself shows the cliff: early windows beat late
        early = res.window_iops[:4].mean()
        late = res.window_iops[-6:].mean()
        assert early > late
    # the report's qualitative finding: the generously-overprovisioned
    # PCIe devices *sustain* random writes (absolute steady IOPS far above
    # the SATA parts) and relocate less per host write
    assert (
        results["virident-tachion"].steady_iops
        > 10 * results["intel-x25m"].steady_iops
    )
    assert (
        results["tms-ramsan20"].write_amplification
        < results["ocz-colossus"].write_amplification
    )
