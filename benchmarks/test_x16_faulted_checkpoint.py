"""X16 — faulted checkpointing: measured utilization vs the Daly model.

Figure 5's argument rests on Daly's closed form for effective utilization
(:func:`repro.failure.checkpoint.expected_utilization`).  This bench
validates it end to end: an application computes in ``TAU_S`` segments
and dumps IOR-style N-1 checkpoints through the *degraded-mode* PFS while
a synthetic LANL interrupt trace (``repro.failure.traces``) drives a
:class:`repro.faults.FaultSchedule` that both interrupts the application
and crashes storage servers under it.

* With ``redundancy="rs:4+2"`` the workload must complete with **zero
  data loss** even while servers are down — restores reconstruct lost
  stripes from surviving shares (Reed-Solomon over GF(256)), dumps
  redirect around dead servers — and the measured utilization must track
  ``expected_utilization`` within ``TOLERANCE``.
* With ``redundancy="none"`` the very same schedule kills the run with
  :class:`repro.faults.RetriesExhausted`: the retry budget cannot bridge
  a 30 s outage.

The expected value uses the *empirical* MTTI (makespan / failures) and
the *measured* mean dump time, so the comparison checks the model's
structure, not the trace generator's sampling noise.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.failure.checkpoint import expected_utilization
from repro.failure.traces import synth_interrupt_trace
from repro.faults import FaultEvent, FaultSchedule, ResilienceParams, RetriesExhausted
from repro.pfs.params import PFSParams
from repro.workloads.checkpoint import run_faulted_checkpoint

N_SERVERS = 8
N_RANKS = 4
WORK_S = 600.0
TAU_S = 20.0
RESTART_S = 5.0
CKPT_BYTES = 32 << 20
HORIZON_S = 1000.0
DOWNTIME_S = 30.0
N_CHIPS = 12
TOLERANCE = 0.15


def build_schedule(seed: int) -> FaultSchedule:
    """Interrupt trace -> app interrupts + server outages.

    Every interrupt stops the application; every other one also crashes a
    (seeded-random) storage server for ``DOWNTIME_S`` — long enough that
    the next dump and the restart's restore both run degraded.
    """
    rng = np.random.default_rng(seed)
    trace = synth_interrupt_trace("x16", n_chips=N_CHIPS, years=5.0, rng=rng)
    app = FaultSchedule.from_interrupt_trace(
        trace, horizon_s=HORIZON_S, kind="app_interrupt"
    )
    events = list(app.events)
    srv_rng = np.random.default_rng(seed + 100)
    for i, t in enumerate(app.app_interrupt_times()):
        if i % 2 == 0:
            server = int(srv_rng.integers(0, N_SERVERS))
            events.append(FaultEvent(t, "server_crash", target=server))
            events.append(FaultEvent(t + DOWNTIME_S, "server_recover", target=server))
    return FaultSchedule(events, name=f"x16:{seed}")


def run_one(seed: int, redundancy):
    params = PFSParams(
        n_servers=N_SERVERS,
        redundancy=redundancy,
        resilience=ResilienceParams() if redundancy is None else None,
    )
    res = run_faulted_checkpoint(
        params,
        work_s=WORK_S,
        tau_s=TAU_S,
        ckpt_bytes=CKPT_BYTES,
        n_ranks=N_RANKS,
        restart_s=RESTART_S,
        faults=build_schedule(seed),
    )
    mtti_emp = res.makespan_s / max(res.failures, 1)
    expected = expected_utilization(mtti_emp, res.dump_s_mean, TAU_S, RESTART_S)
    return res, expected


def _counters(obs) -> dict:
    return obs.metrics.snapshot()["counters"]


def test_x16_faulted_checkpoint(run_once, job_observability):
    res, expected = run_once(run_one, 7, "rs:4+2")
    counters = _counters(job_observability)
    print_table(
        "X16: rs:4+2 checkpointing under LANL-style interrupts (seed 7)",
        ["metric", "value"],
        [
            ["failures", res.failures],
            ["checkpoints", res.checkpoints],
            ["restores", res.restores],
            ["server downtime (s)", f"{res.server_downtime_s:.0f}"],
            ["reconstructions", int(counters.get("faults.reconstructions", 0))],
            ["redirected writes", int(counters.get("faults.redirected_requests", 0))],
            ["mean dump (s)", f"{res.dump_s_mean:.3f}"],
            ["measured utilization", f"{res.utilization:.3f}"],
            ["Daly expected", f"{expected:.3f}"],
        ],
        widths=[24, 14],
    )
    # completion with zero data loss while at least one server was down
    assert not res.data_loss
    assert res.server_downtime_s > 0.0
    assert res.failures > 0 and res.restores > 0
    # degraded machinery genuinely engaged: reads reconstructed from
    # surviving RS shares, writes redirected off dead servers
    assert counters.get("faults.reconstructions", 0) > 0
    assert counters.get("faults.redirected_requests", 0) > 0
    # the Daly model predicts the measured effective utilization
    assert res.utilization == pytest.approx(expected, rel=TOLERANCE)


def test_x16_no_redundancy_dies(run_once):
    """Same trace, no redundancy: a 30 s outage outlives the retry budget."""
    with pytest.raises(RetriesExhausted):
        run_once(run_one, 7, None)


@pytest.mark.slow
def test_x16_interrupt_trace_sweep(job_observability):
    """Full sweep: the model tracks measurement across trace seeds."""
    rows = []
    for seed in (7, 11, 13, 42, 99):
        res, expected = run_one(seed, "rs:4+2")
        rel = abs(res.utilization - expected) / expected
        rows.append(
            [seed, res.failures, res.restores, f"{res.utilization:.3f}",
             f"{expected:.3f}", f"{rel:.3f}"]
        )
        assert not res.data_loss, seed
        assert res.utilization == pytest.approx(expected, rel=TOLERANCE), seed
    print_table(
        "X16 sweep: measured vs Daly utilization across interrupt traces",
        ["seed", "failures", "restores", "measured", "expected", "rel err"],
        rows,
        widths=[6, 10, 10, 10, 10, 9],
    )
