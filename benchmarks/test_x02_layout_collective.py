"""X2 — layout-aware collective I/O (§5.4.2).

Report: exposing the physical layout to the MPI-IO middleware gave 'at
least 24% for the tested benchmark workloads, with the benefit increasing
as the number of processes increases'.
"""

from benchmarks.conftest import print_table
from repro.collective import CollectiveConfig, run_collective_write
from repro.pfs import GPFS_LIKE


def run_x2():
    params = GPFS_LIKE.with_servers(4)
    out = []
    for n_aggs in (2, 4, 8, 16):
        cfg = CollectiveConfig(n_ranks=4 * n_aggs, n_aggregators=n_aggs)
        naive = run_collective_write(cfg, params, layout_aware=False)
        aware = run_collective_write(cfg, params, layout_aware=True)
        gain = (naive.makespan_s - aware.makespan_s) / naive.makespan_s
        out.append((n_aggs, naive, aware, gain))
    return out


def test_x02_layout_collective(run_once):
    results = run_once(run_x2)
    rows = [
        [f"{4 * n} ranks/{n} aggs", naive.bandwidth_MBps, aware.bandwidth_MBps,
         f"{gain:.0%}", naive.lock_migrations, aware.lock_migrations]
        for n, naive, aware, gain in results
    ]
    print_table(
        "Layout-aware collective write vs even file domains",
        ["scale", "naive MB/s", "aware MB/s", "gain", "naive locks", "aware locks"],
        rows,
        widths=[18, 12, 12, 7, 12, 12],
    )
    gains = [g for _, _, _, g in results]
    # the headline: >= 24% at the larger scales
    assert max(gains) >= 0.24
    assert all(g > 0.05 for g in gains)
    # benefit does not shrink as processes grow
    assert gains[-1] >= gains[0] - 0.05
    # mechanism: aligned domains eliminate inter-aggregator lock traffic
    for _, naive, aware, _ in results:
        assert aware.lock_migrations <= naive.lock_migrations
