"""Ablation — the PLFS follow-on features (§1.1's spin-out list).

Measures, on real containers, what each PLFS extension buys:
index compaction, formulaic index compression, on-the-fly checkpoint
compression, delayed-write batching, and small-file packing.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.plfs import Plfs
from repro.plfs.container import Container
from repro.plfs.filehandle import WriteClock
from repro.plfs.indexopt import detect_patterns
from repro.plfs.index import read_index_dropping, compact_entries
from repro.plfs.smallfile import SmallFileReader, SmallFileWriter, backing_file_count


def run_ablation(tmpdir):
    fs = Plfs(tmpdir / "mnt")
    n_ranks, record, steps = 8, 4096, 64
    rows = []

    # -- index compaction & pattern compression on an N-1 strided ckpt ----
    fs.create("/ckpt")
    handles = [fs.open_write("/ckpt", writer=f"r{r}", create=False) for r in range(n_ranks)]
    for s in range(steps):
        for r, h in enumerate(handles):
            h.write(b"D" * record, (s * n_ranks + r) * record)
    for h in handles:
        h.close()
    container = Container.open(fs._resolve("/ckpt"))
    raw_records = 0
    pattern_descriptors = 0
    for i, dp in enumerate(container.iter_droppings()):
        entries = read_index_dropping(dp.index_path)
        raw_records += len(entries)
        runs, leftovers = detect_patterns(compact_entries(entries))
        pattern_descriptors += len(runs) + len(leftovers)
    rows.append(["index pattern compression", f"{raw_records} -> {pattern_descriptors} descriptors"])

    # -- on-the-fly compression -------------------------------------------
    rng = np.random.default_rng(0)
    compressible = bytes(rng.integers(0, 8, size=1 << 20, dtype=np.uint8))
    fs.create("/zckpt")
    with fs.open_write("/zckpt", create=False, compress=True) as h:
        h.write(compressible, 0)
        zratio = h.compression_ratio()
    ok = fs.read_file("/zckpt") == compressible
    rows.append(["checkpoint compression", f"{zratio:.1f}x smaller, roundtrip={'ok' if ok else 'FAIL'}"])

    # -- delayed-write batching --------------------------------------------
    fs.create("/batched")
    with fs.open_write("/batched", create=False, data_buffer_bytes=1 << 20) as h:
        for i in range(512):
            h.write(b"x" * 512, i * 512)
        batched_flushes = h.data_flushes
    fs.create("/unbatched")
    with fs.open_write("/unbatched", create=False) as h:
        for i in range(512):
            h.write(b"x" * 512, i * 512)
        unbatched_flushes = h.data_flushes
    rows.append(["delayed-write batching", f"{unbatched_flushes} -> {batched_flushes} backing writes"])

    # -- small-file packing ---------------------------------------------------
    packed = Container.create(tmpdir / "packed")
    clock = WriteClock()
    for w in range(4):
        with SmallFileWriter(packed, f"w{w}", clock) as writer:
            for i in range(250):
                writer.create(f"f.{w}.{i}", b"tiny payload")
    n_logical = len(SmallFileReader(packed).names())
    n_backing = backing_file_count(packed)
    rows.append(["small-file packing", f"{n_logical} logical files in {n_backing} backing files"])

    return rows, {
        "raw_records": raw_records,
        "descriptors": pattern_descriptors,
        "zratio": zratio,
        "roundtrip_ok": ok,
        "batched": batched_flushes,
        "unbatched": unbatched_flushes,
        "logical": n_logical,
        "backing": n_backing,
        "n_ranks": n_ranks,
    }


def test_abl01_plfs_features(run_once, tmp_path):
    rows, m = run_once(run_ablation, tmp_path)
    print_table("PLFS follow-on feature ablation", ["feature", "effect"], rows, widths=[28, 44])
    # pattern compression: a strided checkpoint reduces to ~1 descriptor/rank
    assert m["descriptors"] <= 2 * m["n_ranks"]
    assert m["raw_records"] / m["descriptors"] > 20
    # compression: big ratio on low-entropy data, content intact
    assert m["zratio"] > 2.0 and m["roundtrip_ok"]
    # batching: order-of-magnitude fewer backing writes
    assert m["batched"] < m["unbatched"] / 10
    # packing: thousand logical files, O(writers) backing files
    assert m["logical"] == 1000
    assert m["backing"] < 20
