"""Fig 4 — interrupts linear in chip count; MTTI projection to exascale.

Report: interrupts ≈ 0.1/chip/year regardless of processors-per-OS; with
top500 growth (speed 2x/yr, chips 2x/18-30mo) MTTI 'may drop to as little
as a few minutes as we approach the exascale era'.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.failure import MachineTrend, fit_interrupts_vs_chips, project_mtti
from repro.failure.traces import synth_lanl_fleet


def run_fig4():
    rng = np.random.default_rng(42)
    fleet = synth_lanl_fleet(rng, years=9.0)
    fit = fit_interrupts_vs_chips(fleet)
    years = np.arange(2008, 2021)
    curves = {
        m: project_mtti(MachineTrend(chip_doubling_months=m), years)
        for m in (18.0, 24.0, 30.0)
    }
    return fleet, fit, years, curves


def test_fig04_mtti_projection(run_once):
    fleet, fit, years, curves = run_once(run_fig4)
    rows = [[t.system, t.n_chips, round(t.interrupts_per_year, 1)] for t in fleet]
    print_table(
        "Fig 4 (left): interrupts/year vs chips",
        ["system", "chips", "interrupts/yr"],
        rows,
        widths=[10, 10, 15],
    )
    rows2 = [
        [int(y)] + [f"{curves[m][i] / 60:.1f} min" for m in (18.0, 24.0, 30.0)]
        for i, y in enumerate(years)
    ]
    print_table(
        "Fig 4 (right): projected MTTI (chip speed 2x per 18/24/30 months)",
        ["year", "18mo", "24mo", "30mo"],
        rows2,
        widths=[8, 14, 14, 14],
    )
    # linear model recovered: slope ~0.1, tiny intercept relative to big systems
    assert fit["slope_per_chip_year"] == __import__("pytest").approx(0.1, rel=0.2)
    assert fit["r2"] > 0.95
    # MTTI falls monotonically for every chip-growth assumption
    for m, mtti in curves.items():
        assert np.all(np.diff(mtti) < 0)
    # 2008 baseline: hours; exascale era with slow chips: minutes
    assert curves[24.0][0] > 3600.0
    assert curves[30.0][-1] < 15 * 60.0
    # slower per-chip growth -> more chips -> lower MTTI
    assert curves[30.0][-1] < curves[24.0][-1] < curves[18.0][-1]
