"""X8 — power-efficient archival storage (§4.2.4, §5.8; Pergamum lineage).

Report findings: semantic data placement lets disks sleep; in
heterogeneous archives more (low-power) devices may counter-intuitively
save power; at very low request rates placement barely matters.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.archive import Archive, ArchiveConfig, ArchiveDiskParams, session_workload


def run_x8():
    rng = np.random.default_rng(9)
    day = 86400.0
    busy = session_workload(day, 6.0, 30, 64, rng)
    quiet = session_workload(day, 0.2, 5, 64, rng)
    rows = []
    for name, events in (("busy", busy), ("quiet", quiet)):
        for placement in ("grouped", "striped"):
            rep = Archive(
                ArchiveConfig(n_disks=16, placement=placement)
            ).evaluate(events, day)
            rows.append((name, placement, rep.mean_power_w, rep.spinups))
    # heterogeneous comparison: few big vs many small drives
    events = session_workload(day, 16.0, 200, 256, np.random.default_rng(2), stat_fraction=0.0)
    big = Archive(ArchiveConfig(n_disks=8, placement="grouped", n_groups=256)).evaluate(events, day)
    small_drive = ArchiveDiskParams(active_w=3.0, idle_w=1.6, standby_w=0.1, spinup_w=6.0, spinup_s=4.0)
    small = Archive(
        ArchiveConfig(n_disks=32, placement="grouped", n_groups=256, disk=small_drive)
    ).evaluate(events, day)
    return rows, big, small


def test_x08_archive_power(run_once):
    rows, big, small = run_once(run_x8)
    print_table(
        "Archive mean power by workload and placement (16 disks)",
        ["workload", "placement", "mean W", "spinups"],
        [[w, p, f"{watts:.1f}", s] for w, p, watts, s in rows],
        widths=[10, 11, 9, 9],
    )
    print_table(
        "Heterogeneous: 8 big drives vs 32 low-power drives",
        ["config", "mean W", "spinups"],
        [
            ["8 x 3.5\" drives", f"{big.mean_power_w:.1f}", big.spinups],
            ["32 x low-power", f"{small.mean_power_w:.1f}", small.spinups],
        ],
        widths=[18, 9, 9],
    )
    by = {(w, p): watts for w, p, watts, _ in rows}
    # grouping saves energy when busy...
    assert by[("busy", "grouped")] < 0.8 * by[("busy", "striped")]
    # ...and placement barely matters when quiet
    assert abs(by[("quiet", "grouped")] - by[("quiet", "striped")]) < 0.15 * by[("quiet", "striped")]
    # more (low-power) devices can draw less power in aggregate
    assert small.mean_power_w < big.mean_power_w
