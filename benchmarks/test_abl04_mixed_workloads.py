"""Ablation — mixing HPC and data-intensive workloads on one parallel FS
(Molina-Estolano et al., PDSW'09: "Mixing Hadoop and HPC Workloads on
Parallel Filesystems", PDSI work).

A checkpointing application and a scan-heavy analytics job co-run on the
same storage servers: both slow down, and the slowdown is asymmetric —
the checkpoint (small strided writes) suffers more from losing disk
locality than the streaming scan does.
"""

from benchmarks.conftest import print_table
from repro.pfs import PFSParams, SimPFS
from repro.sim import Simulator
from repro.workloads import n1_strided


def _run(run_ckpt: bool, run_scan: bool, n_servers: int = 4):
    sim = Simulator()
    pfs = SimPFS(sim, PFSParams(n_servers=n_servers))
    done = {}
    pattern = n1_strided(8, 47 * 1024, 6)

    def setup():
        yield from pfs.op_create(0, "/shared")
        yield from pfs.op_create(0, "/dataset")
        yield from pfs.op_write(0, "/dataset", 0, 64 << 20)

    sim.spawn(setup())
    sim.run()
    start = sim.now

    def ckpt_rank(r, writes):
        for off, n in writes:
            yield from pfs.op_write(r, "/shared", off, n)
        done.setdefault("ckpt", sim.now - start)
        done["ckpt"] = max(done["ckpt"], sim.now - start)

    def scanner(c):
        chunk = 4 << 20
        for i in range(8):
            yield from pfs.op_read(100 + c, "/dataset", ((c * 8 + i) % 16) * chunk, chunk)
        done.setdefault("scan", sim.now - start)
        done["scan"] = max(done["scan"], sim.now - start)

    if run_ckpt:
        for r, writes in enumerate(pattern):
            sim.spawn(ckpt_rank(r, writes))
    if run_scan:
        for c in range(8):
            sim.spawn(scanner(c))
    sim.run()
    return done


def run_abl4():
    alone_ckpt = _run(True, False)["ckpt"]
    alone_scan = _run(False, True)["scan"]
    mixed = _run(True, True)
    return alone_ckpt, alone_scan, mixed


def test_abl04_mixed_workloads(run_once):
    alone_ckpt, alone_scan, mixed = run_once(run_abl4)
    rows = [
        ["checkpoint (N-1 strided)", alone_ckpt, mixed["ckpt"], f"{mixed['ckpt'] / alone_ckpt:.2f}x"],
        ["analytics scan", alone_scan, mixed["scan"], f"{mixed['scan'] / alone_scan:.2f}x"],
    ]
    print_table(
        "Co-running HPC checkpoint + analytics scan on one PFS",
        ["workload", "alone s", "mixed s", "slowdown"],
        rows,
        widths=[26, 10, 10, 10],
    )
    # both suffer from sharing ...
    assert mixed["ckpt"] > alone_ckpt
    assert mixed["scan"] > alone_scan
    # ... and the interference is substantial for at least one of them
    # (the PDSW'09 observation that motivated QoS/insulation work)
    worst = max(mixed["ckpt"] / alone_ckpt, mixed["scan"] / alone_scan)
    assert worst > 1.3
