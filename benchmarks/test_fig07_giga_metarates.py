"""Fig 7 — GIGA+ scale and performance (UCAR Metarates benchmark).

Report: concurrent creates in one directory scale with server count;
stale client maps are corrected lazily at small bounded cost.
"""

from benchmarks.conftest import print_table
from repro.giga import run_metarates


def run_fig7():
    results = []
    for n_servers in (1, 2, 4, 8, 16):
        results.append(run_metarates(n_servers, n_clients=32, files_per_client=200))
    return results


def test_fig07_giga_metarates(run_once):
    results = run_once(run_fig7)
    base = results[0].creates_per_s
    rows = [
        [r.n_servers, round(r.creates_per_s), f"{r.creates_per_s / base:.1f}x",
         r.partitions, r.splits, r.addressing_errors, f"{r.errors_per_create:.3f}"]
        for r in results
    ]
    print_table(
        "Fig 7: Metarates create throughput vs GIGA+ servers",
        ["servers", "creates/s", "scaling", "parts", "splits", "addr errs", "errs/create"],
        rows,
        widths=[9, 11, 9, 7, 8, 11, 13],
    )
    rates = [r.creates_per_s for r in results]
    # throughput grows monotonically with servers...
    assert all(b > a for a, b in zip(rates, rates[1:]))
    # ...and 16 servers deliver at least 5x one server (near-linear trend)
    assert rates[-1] > 5.0 * rates[0]
    # all creates landed; directory integrity verified inside run_metarates
    assert all(r.total_creates == 6400 for r in results)
    # stale-map corrections stay a small fraction of operations
    assert all(r.errors_per_create < 0.3 for r in results)
