"""Fig 15 — Ninjat images of an N-1 strided write pattern.

Report: the offset/time and wrapped-file images of a LANL application
trace 'clearly demonstrate' an N-1 strided pattern of small unaligned
interleaved writes.  We capture a real PLFS trace and regenerate both
rasters plus the classifier's verdict.
"""

import itertools
import tempfile
from pathlib import Path

import numpy as np

from benchmarks.conftest import print_table
from repro import Plfs
from repro.tracing import TraceLog, TracingWriteHandle, classify_pattern, raster_offsets, raster_wrapped


def run_fig15():
    root = Path(tempfile.mkdtemp(prefix="ninjat-bench-"))
    fs = Plfs(root / "mnt")
    fs.create("/app")
    log = TraceLog()
    clock = itertools.count()
    n_ranks, record, steps = 8, 777, 12  # small, odd-sized, interleaved
    handles = [
        TracingWriteHandle(
            fs.open_write("/app", writer=f"rank{r}", create=False),
            log, rank=r, path="/app", clock=clock,
        )
        for r in range(n_ranks)
    ]
    for s in range(steps):
        for r, h in enumerate(handles):
            h.write(bytes([r + 1]) * record, (s * n_ranks + r) * record)
    for h in handles:
        h.close()
    data_len = len(fs.read_file("/app"))
    verdict = classify_pattern(log)
    img_t = raster_offsets(log, width=96, height=96)
    img_w = raster_wrapped(log, width=96, height=96)
    # one cell per record: the interleave becomes visible at this scale
    img_coarse = raster_wrapped(log, width=n_ranks * steps, height=1)
    return n_ranks, record, steps, data_len, verdict, img_t, img_w, img_coarse


def test_fig15_ninjat(run_once):
    n_ranks, record, steps, data_len, verdict, img_t, img_w, img_coarse = run_once(run_fig15)
    print_table(
        "Fig 15: Ninjat analysis of a PLFS-traced application",
        ["metric", "value"],
        [
            ["pattern", verdict["label"]],
            ["ranks", verdict["n_ranks"]],
            ["interleave", f"{verdict['interleave']:.2f}"],
            ["strided ranks", f"{verdict['strided_ranks']:.2f}"],
            ["file bytes", data_len],
        ],
        widths=[16, 14],
    )
    assert data_len == n_ranks * record * steps
    assert verdict["label"] == "n1-strided"
    assert verdict["n_ranks"] == n_ranks
    # offset/time raster: every rank's color appears, activity spans the frame
    colors_t = set(np.unique(img_t)) - {0}
    assert len(colors_t) == n_ranks
    assert (img_t > 0).any(axis=0).mean() > 0.5
    # wrapped raster: all ranks present at fine resolution
    filled = img_w.ravel()[img_w.ravel() > 0]
    assert len(set(filled.tolist())) == n_ranks
    # at one-cell-per-record resolution, ownership alternates constantly —
    # the visual signature of N-1 strided writing
    coarse = img_coarse.ravel()
    coarse = coarse[coarse > 0]
    assert np.mean(np.diff(coarse) != 0) > 0.8
