"""X10 — replication tradeoffs for write-mostly applications (§4.2.4).

Report (Michigan/UCSC): discrete-event models "identify appropriate
replication strategies to optimize application server utilization and
storage system reliability" — more replicas buy availability but eat
write bandwidth; the optimum is interior.
"""

from benchmarks.conftest import print_table
from repro.replication import ReplicationConfig, sweep_replication

YEAR = 365 * 86400.0


def run_x10():
    base = ReplicationConfig(
        n_servers=12, server_mttf_s=5 * 86400.0, recover_s=12 * 3600.0
    )
    return sweep_replication(base, 2 * YEAR, seed=5)


def test_x10_replication_tradeoff(run_once):
    outs = run_once(run_x10)
    rows = [
        [o.replicas, f"{o.utilization:.2%}", f"{o.availability:.3%}",
         o.data_loss_events, f"{o.write_bandwidth_fraction:.0%}"]
        for o in outs
    ]
    print_table(
        "Replication degree sweep (12 servers, write-mostly app, 2 years)",
        ["replicas", "utilization", "availability", "data losses", "b/w used"],
        rows,
        widths=[10, 13, 14, 13, 10],
    )
    util = [o.utilization for o in outs]
    avail = [o.availability for o in outs]
    losses = [o.data_loss_events for o in outs]
    # 1 replica loses data regularly; >= 4 replicas essentially never
    assert losses[0] > 0
    assert losses[2] < losses[0] / 10
    assert losses[3] == 0
    # availability improves with replication
    assert avail[2] > avail[0]
    # utilization has an interior optimum: fan-out eventually throttles
    best = util.index(max(util))
    assert 0 < best < len(util) - 1
    assert util[-1] < util[best]
