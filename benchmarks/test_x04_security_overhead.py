"""X4 — scalable capability security overhead (§4.2.4).

Report (UCSC/Ceph): 'performance degradation of at most 6-7% on workloads
with shared files and shared disks, with typical overheads averaging
1-2%'.
"""

from benchmarks.conftest import print_table
from repro.pfs import PFSParams, SimPFS
from repro.pfs.security import CAPABILITY_SECURITY, NO_SECURITY, SecurityPolicy
from repro.sim import Simulator


def _run(security: SecurityPolicy, n_clients: int, writes_per_client: int, write_bytes: int) -> float:
    sim = Simulator()
    pfs = SimPFS(sim, PFSParams(n_servers=8), security=security)

    def client(c: int):
        path = f"/shared{c % 2}"  # shared files across clients
        if not pfs.exists(path):
            yield from pfs.op_create(c, path)
        else:
            yield from pfs.op_open(c, path)
        for i in range(writes_per_client):
            off = (i * n_clients + c) * write_bytes
            yield from pfs.op_write(c, path, off, write_bytes)

    for c in range(n_clients):
        sim.spawn(client(c))
    return sim.run()


def run_x4():
    out = []
    for name, wb in (("large-write", 1 << 20), ("small-write", 64 * 1024)):
        plain = _run(NO_SECURITY, n_clients=8, writes_per_client=16, write_bytes=wb)
        secured = _run(CAPABILITY_SECURITY, n_clients=8, writes_per_client=16, write_bytes=wb)
        out.append((name, plain, secured, secured / plain - 1.0))
    return out


def test_x04_security_overhead(run_once):
    results = run_once(run_x4)
    print_table(
        "Capability security overhead on shared-file workloads",
        ["workload", "plain s", "secured s", "overhead"],
        [[n, p, s, f"{o:.2%}"] for n, p, s, o in results],
        widths=[14, 12, 12, 10],
    )
    for name, plain, secured, overhead in results:
        assert secured >= plain  # security is never free
        assert overhead < 0.07, name          # at most 6-7%
    # the typical (large-write) case lands in the 1-2% band or below
    assert results[0][3] < 0.02
