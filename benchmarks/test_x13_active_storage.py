"""X13 — Active Storage (report §2.1.5, PNNL/SDM collaboration).

Pushing reduction-heavy analysis kernels to the storage servers avoids
moving the dataset and parallelizes the scan; compute-heavy kernels on
slow server CPUs still belong at the client — the crossover this bench
sweeps.
"""

from benchmarks.conftest import print_table
from repro.activestorage import ActiveKernel, compare_plans
from repro.pfs import PFSParams

PARAMS = PFSParams(n_servers=8)


def run_x13():
    rows = []
    for name, reduction, server_cpu in (
        ("histogram", 10_000.0, 0.5e9),
        ("feature-extract", 100.0, 0.5e9),
        ("filter-10%", 10.0, 0.5e9),
        ("transform (no reduction)", 1.0, 0.5e9),
        ("heavy-kernel slow CPU", 1.0, 0.01e9),
    ):
        kernel = ActiveKernel(
            name=name, dataset_bytes=64 << 20, reduction=reduction,
            server_cpu_Bps=server_cpu, client_cpu_Bps=10e9,
        )
        out = compare_plans(kernel, PARAMS)
        rows.append((name, reduction, out))
    return rows


def test_x13_active_storage(run_once):
    rows = run_once(run_x13)
    print_table(
        "Active storage vs client-pull (64 MiB dataset, 8 servers)",
        ["kernel", "reduction", "pull s", "active s", "speedup", "net saved"],
        [
            [n, f"{r:g}", o["client_pull_s"], o["active_s"],
             f"{o['speedup']:.1f}x", f"{o['network_saved_frac']:.0%}"]
            for n, r, o in rows
        ],
        widths=[26, 10, 10, 10, 9, 10],
    )
    by = {n: o for n, _, o in rows}
    # reducing kernels: clear active-storage win with ~all network saved
    assert by["histogram"]["speedup"] > 2.0
    assert by["histogram"]["network_saved_frac"] > 0.99
    # the win shrinks as reduction falls ...
    assert by["histogram"]["speedup"] >= by["filter-10%"]["speedup"]
    # ... and inverts for compute-bound kernels on weak server CPUs
    assert by["heavy-kernel slow CPU"]["speedup"] < 1.0
