"""X12 — pNFS vs NFS scaling (report §2.2/§5.7).

Report: "By separating data and metadata access, pNFS eliminates the
server bottlenecks inherent to NAS access methods" and "promises state of
the art performance, massive scalability".
"""

from benchmarks.conftest import print_table
from repro.pnfs import run_scaling_experiment
from repro.pnfs.server import NFSParams


def run_x12():
    return run_scaling_experiment(
        [1, 2, 4, 8, 16], nbytes_per_client=16 << 20, params=NFSParams()
    )


def test_x12_pnfs_scaling(run_once):
    rows = run_once(run_x12)
    print_table(
        "Aggregate write bandwidth: NFS funnel vs pNFS direct striping",
        ["clients", "NFS MB/s", "pNFS MB/s", "speedup"],
        [[r["clients"], f"{r['nfs_MBps']:.0f}", f"{r['pnfs_MBps']:.0f}",
          f"{r['speedup']:.1f}x"] for r in rows],
        widths=[9, 11, 11, 9],
    )
    p = NFSParams()
    nfs = [r["nfs_MBps"] for r in rows]
    pnfs = [r["pnfs_MBps"] for r in rows]
    # NFS saturates at the single server NIC
    assert max(nfs) <= p.server_nic_Bps / 1e6 * 1.05
    assert nfs[-1] <= nfs[2] * 1.1
    # pNFS keeps scaling until the data-server NICs fill
    assert pnfs[-1] > 4.0 * nfs[-1]
    assert pnfs[-1] <= p.n_data_servers * p.server_nic_Bps / 1e6 * 1.05
    # and the gap widens with client count
    speedups = [r["speedup"] for r in rows]
    assert speedups[-1] > speedups[0]
