"""X14 — checkpoint restart goodput vs stripe width under finite switch buffers.

The PDSI incast study (Phanishayee et al., FAST'08) is about exactly this
pattern: a client reads a block striped over W servers, all W replies
converge on the client's switch output port, and once W exceeds what the
port buffer absorbs, full-window losses put servers into 200 ms
retransmission timeouts — goodput collapses by an order of magnitude
even though disks and links are idle.  With the shared network fabric
this now falls out of the regular ``SimPFS`` data path: the same
checkpoint read-back, run under an ideal fabric, a finite-buffer fabric
with the legacy 200 ms minimum RTO, and the published ~1 ms fix.

Per-port drop/occupancy metrics land in the active ``repro.obs`` job
report (the bench fixture attaches one), which is how the collapse is
diagnosed: drops spike at the client port exactly at the cliff.
"""

from benchmarks.conftest import print_table
from repro.net.fabric import FabricParams
from repro.pfs.params import PFSParams
from repro.pfs.system import SimPFS
from repro.sim import Simulator

TOTAL_BYTES = 4 << 20
OP_BYTES = 1 << 20
WIDTHS = [2, 4, 8, 16, 32]
BUFFER_PKTS = 64


def _restart_goodput(width: int, fabric: FabricParams) -> float:
    """Write a checkpoint, then one client reads it back striped over
    ``width`` servers; returns read goodput in MB/s."""
    params = PFSParams(n_servers=width, stripe_unit=64 * 1024, fabric=fabric)
    sim = Simulator()
    pfs = SimPFS(sim, params)

    def write():
        yield from pfs.op_create(0, "/ckpt")
        pos = 0
        while pos < TOTAL_BYTES:
            yield from pfs.op_write(0, "/ckpt", pos, OP_BYTES)
            pos += OP_BYTES

    sim.spawn(write())
    sim.run()
    t0 = sim.now

    def read():
        pos = 0
        while pos < TOTAL_BYTES:
            yield from pfs.op_read(1, "/ckpt", pos, OP_BYTES)
            pos += OP_BYTES

    sim.spawn(read())
    sim.run()
    return TOTAL_BYTES / (sim.now - t0) / 1e6


def run_x14(obs):
    ideal = FabricParams()
    legacy = FabricParams(name="1GE-200ms", buffer_pkts=BUFFER_PKTS, min_rto_s=0.2, seed=7)
    fixed = FabricParams(name="1GE-1ms", buffer_pkts=BUFFER_PKTS, min_rto_s=1e-3, seed=7)
    rows = []
    drops_key = "net.fabric.drops_pkts{port=client1}"
    for w in WIDTHS:
        g_ideal = _restart_goodput(w, ideal)
        before = obs.metrics.snapshot()["counters"].get(drops_key, 0.0)
        g_legacy = _restart_goodput(w, legacy)
        drops = obs.metrics.snapshot()["counters"].get(drops_key, 0.0) - before
        g_fixed = _restart_goodput(w, fixed)
        rows.append((w, g_ideal, g_legacy, int(drops), g_fixed))
    return rows


def test_x14_fabric_stripe(run_once, job_observability):
    rows = run_once(run_x14, job_observability)
    print_table(
        f"X14: restart read goodput vs stripe width ({BUFFER_PKTS}-pkt port buffer)",
        ["width", "ideal MB/s", "200ms RTO MB/s", "port drops", "1ms RTO MB/s"],
        [[w, f"{gi:.1f}", f"{gl:.1f}", d, f"{gf:.1f}"] for w, gi, gl, d, gf in rows],
        widths=[7, 12, 16, 12, 14],
    )
    by_width = {w: (gi, gl, d, gf) for w, gi, gl, d, gf in rows}
    # the ideal fabric never collapses: widest stripe at least as fast as narrow
    assert by_width[32][0] > 0.8 * by_width[4][0]
    # below the cliff the finite-buffer fabric tracks ideal loosely
    assert by_width[4][1] > 0.4 * by_width[4][0]
    # past the port buffer: goodput collapses >5x and port drops spike
    # (below the cliff a handful of fast-retransmit drops are tolerable)
    assert by_width[32][1] < by_width[8][1] / 5.0
    assert by_width[2][2] == 0
    assert by_width[32][2] > 2 * by_width[8][2] > 0
    # the published fix: ~1 ms minimum RTO restores most of the goodput
    assert by_width[32][3] > 4.0 * by_width[32][1]
    # per-port occupancy metrics are in the job report
    snap = job_observability.metrics.snapshot()
    assert any(
        k.startswith("net.fabric.occupancy_pkts{") for k in snap["gauges"]
    )
    assert any(
        k.startswith("net.fabric.occupancy_pkts.hist{") for k in snap["histograms"]
    )
