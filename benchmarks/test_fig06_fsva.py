"""Fig 6 — File System Virtual Appliances: forwarding overhead.

Report (§4.2.1): moving the FS client into a VM costs a forwarding hop;
'with shared memory tricks common in virtual machines, we hope that this
need not slow down applications significantly'.
"""

from benchmarks.conftest import print_table
from repro.fsva import relative_overhead, run_workload
from repro.fsva.model import STREAM_LIKE, UNTAR_LIKE


def run_fig6():
    out = []
    for mix in (UNTAR_LIKE, STREAM_LIKE):
        for mode in ("native", "fsva-naive", "fsva-shared"):
            out.append(
                [mix.name, mode, run_workload(mix, mode), relative_overhead(mix, mode)]
            )
    return out


def test_fig06_fsva(run_once):
    rows = run_once(run_fig6)
    print_table(
        "Fig 6: FSVA runtime by transport",
        ["workload", "mode", "seconds", "overhead"],
        [[w, m, t, f"{o:.1%}"] for w, m, t, o in rows],
        widths=[14, 14, 12, 10],
    )
    by = {(w, m): (t, o) for w, m, t, o in rows}
    for mix in ("untar-like", "stream-like"):
        native, _ = by[(mix, "native")]
        naive_t, naive_o = by[(mix, "fsva-naive")]
        shared_t, shared_o = by[(mix, "fsva-shared")]
        assert native < shared_t < naive_t
        # shared-memory transport keeps overhead modest (<15%)
        assert shared_o < 0.15
    # the naive path hurts metadata-heavy workloads the most
    assert by[("untar-like", "fsva-naive")][1] > by[("stream-like", "fsva-naive")][1]
    assert by[("untar-like", "fsva-naive")][1] > 0.4
