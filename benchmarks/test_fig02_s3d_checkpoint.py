"""Fig 2 — S3D c2h4 checkpoint time under weak scaling + 12-hour projection.

Report: (a) measured checkpoint I/O time grows with rank count under weak
scaling; (b) the linear model projects checkpointing to consume a growing
share of a 12-hour production run.
"""

from benchmarks.conftest import print_table
from repro.pfs import LUSTRE_LIKE
from repro.workloads import S3DWeakScaling, predict_checkpoint_series
from repro.workloads.s3d import measure_weak_scaling


def run_fig2():
    cfg = S3DWeakScaling(per_rank_bytes=1 << 20, rank_counts=(4, 8, 16, 32, 64))
    measured = measure_weak_scaling(cfg, LUSTRE_LIKE.with_servers(8))
    predicted = predict_checkpoint_series(measured, run_hours=12.0, checkpoint_interval_s=1800.0)
    return measured, predicted


def test_fig02_s3d_checkpoint(run_once):
    measured, predicted = run_once(run_fig2)
    rows = [
        [m.n_ranks, m.checkpoint_time_s, m.bandwidth_MBps,
         p["total_checkpoint_s"], f"{p['fraction_of_run']:.1%}"]
        for m, p in zip(measured, predicted)
    ]
    print_table(
        "Fig 2: S3D weak scaling — measured 1 checkpoint, predicted 12 h run",
        ["ranks", "ckpt time s", "agg MB/s", "12h ckpt s", "share of run"],
        rows,
        widths=[8, 13, 11, 12, 14],
    )
    times = [m.checkpoint_time_s for m in measured]
    # weak scaling through a fixed file system: time grows with ranks
    assert all(b > a for a, b in zip(times, times[1:]))
    # roughly linear growth (report's model): 16x ranks within ~3x of 16x time
    assert 4.0 < times[-1] / times[0] < 48.0
    # the checkpoint share of the 12-hour run grows monotonically
    fracs = [p["fraction_of_run"] for p in predicted]
    assert fracs == sorted(fracs)
    assert fracs[-1] > fracs[0] * 4
