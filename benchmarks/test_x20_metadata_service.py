"""X20 — sharded GIGA+ metadata service: scaling, redirects, failover.

Beyond the report: the Fig-7 demo grown into a metadata *plane*
(`repro.giga.service`): consistent-hash shard ownership over GIGA+
partitions, client-cached shard maps corrected by the stale-bitmap hint
trick, and membership/failover through the coordinator registry.  The
acceptance criteria from the roadmap item: 8-server goodput ≥ 3× the
1-server goodput, mean redirects per operation ≤ 2 once client maps are
warm, and zero operations lost across a mid-storm server crash.
"""

from benchmarks.conftest import print_table
from repro.faults import FaultEvent, FaultSchedule
from repro.giga import ServiceParams, run_storm

N_CLIENTS = 32
FILES_PER_CLIENT = 100
PARAMS = ServiceParams(split_threshold=64)


def run_x20_scaling():
    return [
        run_storm(ns, N_CLIENTS, FILES_PER_CLIENT, params=PARAMS)
        for ns in (1, 2, 4, 8)
    ]


def test_x20_storm_scaling(run_once):
    results = run_once(run_x20_scaling)
    base = results[0]
    rows = [
        [r.n_servers, round(r.creates_per_s), f"{r.creates_per_s / base.creates_per_s:.1f}x",
         round(r.lookups_per_s), f"{r.lookups_per_s / base.lookups_per_s:.1f}x",
         r.partitions, f"{r.mean_redirects_create:.3f}", f"{r.mean_redirects_lookup:.3f}"]
        for r in results
    ]
    print_table(
        "X20: metadata-service storm vs server count",
        ["servers", "creates/s", "scaling", "lookups/s", "scaling",
         "parts", "redir/create", "redir/lookup"],
        rows,
        widths=[9, 11, 9, 11, 9, 7, 14, 14],
    )
    total = N_CLIENTS * FILES_PER_CLIENT
    assert all(r.creates == total for r in results)
    assert all(r.found == r.lookups == total for r in results)
    r8 = results[-1]
    # near-linear create/lookup scaling: 8 servers ≥ 3× one server
    assert r8.creates_per_s >= 3.0 * base.creates_per_s
    assert r8.lookups_per_s >= 3.0 * base.lookups_per_s
    # redirects stay bounded: ≤ 2 per op even cold, and the warm-map
    # (lookup-phase) mean is far below one
    assert all(r.mean_redirects_create <= 2.0 for r in results)
    assert all(r.mean_redirects_lookup <= 2.0 for r in results)
    # hot-shard splitting actually spread the namespace
    assert r8.partitions > r8.n_servers
    assert sum(1 for v in r8.shard_spread.values() if v) == 8


def test_x20_crash_failover_loses_nothing(run_once):
    """A server crash mid-storm: the coordinator fails its shards over to
    ring successors, clients retry through the registry, and every
    create and lookup still completes."""
    faults = FaultSchedule(
        [
            FaultEvent(at_s=0.03, kind="server_crash", target=2),
            FaultEvent(at_s=0.15, kind="server_recover", target=2),
        ],
        name="x20-crash",
    )
    r = run_once(
        run_storm, 8, N_CLIENTS, FILES_PER_CLIENT,
        params=PARAMS, faults=faults,
    )
    healthy = run_storm(8, N_CLIENTS, FILES_PER_CLIENT, params=PARAMS)
    print_table(
        "X20: mid-storm crash with failover (8 servers)",
        ["run", "creates", "lookups", "found", "dead hops", "failovers",
         "map ver", "creates/s"],
        [
            ["healthy", healthy.creates, healthy.lookups, healthy.found,
             healthy.dead_hops, healthy.failovers, healthy.map_version,
             round(healthy.creates_per_s)],
            ["crashed", r.creates, r.lookups, r.found, r.dead_hops,
             r.failovers, r.map_version, round(r.creates_per_s)],
        ],
        widths=[9, 9, 9, 8, 11, 11, 9, 11],
    )
    total = N_CLIENTS * FILES_PER_CLIENT
    # zero operations lost: every create landed, every lookup found its file
    assert r.creates == total
    assert r.found == r.lookups == total
    assert r.failovers == 1 and r.rejoins == 1
    assert r.map_version == 2
    assert r.dead_hops > 0                     # clients really hit the crash
    # the crash costs throughput but not an order of magnitude
    assert r.creates_per_s > 0.3 * healthy.creates_per_s
