"""Fig 9 — TCP incast goodput collapse and the low/randomized-RTO fix.

Report: synchronized reads on 1GE collapse as senders grow (200 ms min
RTO idles the link); a ~1 ms minimum RTO restores goodput; at thousands
of senders on 10GE the timeout must also be randomized.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.net import ONE_GE, IncastConfig, simulate_incast


def run_fig9():
    counts = [1, 2, 4, 8, 16, 32, 47]
    legacy = [simulate_incast(ONE_GE, n, np.random.default_rng(100 + n), n_blocks=10) for n in counts]
    fixed_cfg = IncastConfig(min_rto_s=1e-3)
    fixed = [simulate_incast(fixed_cfg, n, np.random.default_rng(100 + n), n_blocks=10) for n in counts]
    # 10GE extreme fan-in: fixed vs jittered 1ms RTO
    base10 = dict(link_Bps=1250e6, rtt_s=40e-6, buffer_pkts=64, sru_bytes=8 * 1024, min_rto_s=1e-3)
    n_big = 1024
    ten_fixed = simulate_incast(IncastConfig(name="10GE", **base10), n_big, np.random.default_rng(5), n_blocks=5)
    ten_jit = simulate_incast(
        IncastConfig(name="10GE", rto_jitter=True, **base10), n_big, np.random.default_rng(5), n_blocks=5
    )
    return counts, legacy, fixed, ten_fixed, ten_jit


def test_fig09_incast(run_once):
    counts, legacy, fixed, ten_fixed, ten_jit = run_once(run_fig9)
    rows = [
        [n, f"{l.goodput_MBps:.1f}", l.timeouts, f"{f.goodput_MBps:.1f}", f.timeouts]
        for n, l, f in zip(counts, legacy, fixed)
    ]
    print_table(
        "Fig 9 (left): 1GE synchronized reads, goodput vs senders",
        ["senders", "200ms RTO MB/s", "timeouts", "1ms RTO MB/s", "timeouts"],
        rows,
        widths=[9, 16, 10, 14, 10],
    )
    print_table(
        "Fig 9 (right): 10GE, 1024 senders",
        ["min RTO", "goodput MB/s", "timeouts", "repeat timeouts"],
        [
            ["1ms fixed", f"{ten_fixed.goodput_MBps:.0f}", ten_fixed.timeouts, ten_fixed.repeat_timeouts],
            ["1ms+rand", f"{ten_jit.goodput_MBps:.0f}", ten_jit.timeouts, ten_jit.repeat_timeouts],
        ],
        widths=[11, 14, 10, 16],
    )
    peak = max(r.goodput_Bps for r in legacy)
    floor = legacy[-1].goodput_Bps
    # collapse: >10x drop from the small-fan-in peak by 47 senders
    assert floor < peak / 10.0
    assert legacy[-1].timeouts > 0
    # the 1 ms fix holds goodput high across the sweep
    assert fixed[-1].goodput_Bps > 10.0 * floor
    # at extreme fan-in, randomization beats a fixed low RTO
    assert ten_jit.goodput_Bps > 1.2 * ten_fixed.goodput_Bps
    assert ten_jit.repeat_timeouts < 0.8 * ten_fixed.repeat_timeouts
