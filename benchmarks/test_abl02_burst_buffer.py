"""Ablation — flash burst buffer for checkpoints (PDSI follow-on #6).

How much of Fig 5's utilization collapse does a flash staging tier buy
back?  The buffer shrinks the app-visible dump time by bb/pfs bandwidth
ratio, but the checkpoint interval can't drop below the drain time.
"""


from benchmarks.conftest import print_table
from repro.burstbuffer import BurstBufferConfig, best_utilization
from repro.failure import MachineTrend


def run_abl2():
    trend = MachineTrend(chip_doubling_months=24.0)
    cfg = BurstBufferConfig(bb_write_Bps=10e9, drain_Bps=1e9, pfs_direct_Bps=1e9)
    ckpt_bytes = 900e9  # so the direct dump costs Fig 5's 900 s
    rows = []
    for year in range(2008, 2019, 2):
        mtti = trend.mtti_s(float(year))
        direct = best_utilization(mtti, ckpt_bytes, cfg, via_bb=False)
        bb = best_utilization(mtti, ckpt_bytes, cfg, via_bb=True)
        rows.append(
            (year, mtti / 60.0, direct["utilization"], bb["utilization"],
             bb["drain_bound_active"])
        )
    return rows


def test_abl02_burst_buffer(run_once):
    rows = run_once(run_abl2)
    print_table(
        "Utilization with/without a 10x burst buffer (balanced PFS)",
        ["year", "MTTI min", "direct", "burst buffer", "drain-bound"],
        [[y, f"{m:.0f}", f"{d:.1%}", f"{b:.1%}", str(a)] for y, m, d, b, a in rows],
        widths=[7, 10, 9, 13, 12],
    )
    # the buffer always helps, and the help grows as MTTI shrinks ...
    gains = [b - d for _, _, d, b, _ in rows]
    assert all(g > 0 for g in gains[:-1])
    assert gains[3] > gains[0]
    # ... pushing the <50% crossing years later
    direct_cross = next(y for y, _, d, _, _ in rows if d < 0.5)
    bb_cross = next((y for y, _, _, b, _ in rows if b < 0.5), 9999)
    assert bb_cross > direct_cross
    # near exascale the drain bandwidth becomes the binding constraint
    assert rows[-1][4]
