#!/usr/bin/env python
"""Check that intra-repo markdown links point at files that exist.

Scans every tracked ``*.md`` for ``[text](target)`` links, resolves each
relative ``target`` (fragments stripped) against the linking file, and
fails listing every dangling link.  External (``http``/``mailto``) and
pure-fragment links are skipped.  Usage: ``python tools/checklinks.py``.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
SKIP = ("http://", "https://", "mailto:")


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    broken = []
    for md in sorted(root.rglob("*.md")):
        if any(part.startswith(".") for part in md.relative_to(root).parts):
            continue  # .git, .github templates etc.
        for target in LINK.findall(md.read_text(encoding="utf-8")):
            if target.startswith(SKIP) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if path and not (md.parent / path).exists():
                broken.append(f"{md.relative_to(root)}: {target}")
    if broken:
        print("broken intra-repo markdown links:")
        print("\n".join(f"  {b}" for b in broken))
        return 1
    print("all intra-repo markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
