#!/usr/bin/env python3
"""Compare two BENCH_*.json files; fail on regressions beyond a tolerance.

Used by the CI ``bench`` job::

    python tools/benchdiff.py benchmarks/results/BENCH_baseline.json BENCH_ci.json

Two classes of metric, compared differently:

* **Deterministic** (``events_dispatched``, ``peak_heap_depth``,
  ``sim_makespan_s``) — machine-independent, compared directly: the
  current value must not exceed baseline × (1 + tolerance).  A growth
  here is a real behaviour change (more events scheduled, deeper heap,
  slower simulated outcome), whatever the hardware.
* **Wall-clock** (``wall_s``) — machine-dependent.  Each benchmark's
  current/baseline ratio is divided by the *geometric mean* of all
  ratios, cancelling uniform machine-speed differences; a benchmark
  fails only if it slowed down relative to its peers by more than the
  tolerance.  Caveat: a uniform slowdown across every benchmark is
  normalized away by construction — that case is caught by the
  deterministic event counts and by the committed trajectory over time,
  not by one diff.  Benchmarks whose *baseline* wall is under
  ``--wall-floor`` seconds (default 0.02) are excluded from the wall
  check (and from the geometric mean): at that scale the measurement is
  scheduler jitter, not the workload, and a 25% band is a few
  milliseconds wide.  Their deterministic metrics are still compared.
  ``--absolute-wall`` disables the normalization for same-machine
  comparisons; ``--no-wall`` skips wall checks entirely.

Exit codes: 0 no regression, 1 regression (or missing benchmark), 2
usage / unreadable / schema-mismatched input.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

SCHEMA = "repro-bench-v1"
DETERMINISTIC = ("events_dispatched", "peak_heap_depth", "sim_makespan_s")


def load(path: str) -> dict:
    try:
        doc = json.loads(Path(path).read_text())
    except OSError as exc:
        sys.exit(f"benchdiff: error: {exc}")
    except json.JSONDecodeError as exc:
        sys.exit(f"benchdiff: error: {path}: not a bench file ({exc})")
    if doc.get("schema") != SCHEMA:
        sys.exit(f"benchdiff: error: {path}: schema {doc.get('schema')!r} != {SCHEMA!r}")
    return doc


def compare(base: dict, cur: dict, tolerance: float, wall: str,
            wall_floor: float = 0.02) -> list[str]:
    """Return a list of regression descriptions (empty = pass)."""
    problems: list[str] = []
    b_rows, c_rows = base["benchmarks"], cur["benchmarks"]
    missing = sorted(set(b_rows) - set(c_rows))
    for name in missing:
        problems.append(f"{name}: missing from current run")
    common = [n for n in b_rows if n in c_rows]
    for name in common:
        for key in DETERMINISTIC:
            if key not in b_rows[name]:
                continue
            b, c = b_rows[name][key], c_rows[name].get(key)
            if c is None:
                problems.append(f"{name}.{key}: missing from current run")
            elif b > 0 and c > b * (1.0 + tolerance):
                problems.append(
                    f"{name}.{key}: {c:g} vs baseline {b:g} "
                    f"(+{(c / b - 1.0) * 100:.1f}% > {tolerance * 100:.0f}%)"
                )
    if wall != "off":
        ratios = {}
        for name in common:
            b, c = b_rows[name].get("wall_s"), c_rows[name].get("wall_s")
            if b and c and b >= wall_floor:
                ratios[name] = c / b
        if ratios:
            gmean = math.exp(sum(math.log(r) for r in ratios.values()) / len(ratios))
            for name, r in sorted(ratios.items()):
                norm = r / gmean if wall == "relative" else r
                if norm > 1.0 + tolerance:
                    how = "normalized " if wall == "relative" else ""
                    problems.append(
                        f"{name}.wall_s: {how}ratio {norm:.2f} > {1.0 + tolerance:.2f}"
                    )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/benchdiff.py",
        description="Fail when a BENCH_*.json run regresses past the baseline.",
        epilog="exit codes: 0 ok, 1 regression/missing benchmark, 2 usage/bad input",
    )
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative growth (default 0.25 = 25%%)")
    parser.add_argument("--no-wall", action="store_true",
                        help="skip wall-clock checks entirely")
    parser.add_argument("--absolute-wall", action="store_true",
                        help="compare raw wall ratios (same-machine runs)")
    parser.add_argument("--wall-floor", type=float, default=0.02,
                        help="skip wall checks for benchmarks whose baseline "
                             "wall is below this many seconds (default 0.02)")
    args = parser.parse_args(argv)
    base, cur = load(args.baseline), load(args.current)
    wall = "off" if args.no_wall else ("absolute" if args.absolute_wall else "relative")
    problems = compare(base, cur, args.tolerance, wall, args.wall_floor)
    names = [n for n in base["benchmarks"] if n in cur["benchmarks"]]
    print(f"benchdiff: {base.get('rev')} -> {cur.get('rev')}  "
          f"({len(names)} benchmarks, tolerance {args.tolerance * 100:.0f}%, wall={wall})")
    for name in names:
        b, c = base["benchmarks"][name], cur["benchmarks"][name]
        print(f"  {name:<18} events {b.get('events_dispatched'):>9} -> "
              f"{c.get('events_dispatched'):>9}   wall {b.get('wall_s', 0):.3f}s -> "
              f"{c.get('wall_s', 0):.3f}s")
    if problems:
        for p in problems:
            print(f"REGRESSION: {p}")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
