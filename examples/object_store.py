#!/usr/bin/env python
"""RADOS-lite: surviving OSD failures with CRUSH-placed replication.

Writes a few hundred objects into the Ceph-lineage object store, kills
OSDs one at a time, and shows re-peering keeping everything readable
while moving only ~1/n of the data per failure.

Run:  python examples/object_store.py
"""

import numpy as np

from repro.rados import RadosCluster


def main() -> None:
    n_osds, replicas = 10, 3
    cluster = RadosCluster(n_osds=n_osds, replicas=replicas)
    rng = np.random.default_rng(0)
    blobs = {}
    for i in range(300):
        name = f"obj.{i:04d}"
        blobs[name] = bytes(rng.integers(0, 256, size=256, dtype=np.uint8))
        cluster.write(name, blobs[name])
    total = cluster.total_stored_bytes()
    print(f"{len(blobs)} objects, {replicas} replicas on {n_osds} OSDs "
          f"({total / 1024:.0f} KiB stored)")
    print(f"epoch {cluster.osdmap.epoch}, up set: {sorted(cluster.osdmap.up)}\n")

    for victim in (3, 7):
        moved = cluster.fail_osd(victim)
        cluster.check_invariants()
        ok = all(cluster.read(n) == d for n, d in blobs.items())
        print(
            f"OSD {victim} fails -> epoch {cluster.osdmap.epoch}: "
            f"recovered {moved / 1024:.0f} KiB "
            f"({moved / total:.0%} of stored data), "
            f"degraded={len(cluster.degraded_objects())}, "
            f"all objects readable: {ok}"
        )

    moved = cluster.rejoin_osd(3)
    cluster.check_invariants()
    print(
        f"OSD 3 rejoins (empty) -> epoch {cluster.osdmap.epoch}: "
        f"backfilled {moved / 1024:.0f} KiB"
    )
    print(
        "\nStraw placement adapts minimally: each failure relocates roughly\n"
        "one OSD's share, not the whole namespace — the CRUSH property that\n"
        "made Ceph (a project PDSI helped incubate) scale."
    )


if __name__ == "__main__":
    main()
