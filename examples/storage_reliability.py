#!/usr/bin/env python
"""Storage reliability toolbox: erasure codes, diagnosis, burst buffers.

Three of the report's reliability threads in one tour:
1. Reed-Solomon protection levels vs capacity overhead (DiskReduce),
2. peer-comparison fault diagnosis on a 20-server cluster,
3. a flash burst buffer pushing back Fig 5's utilization collapse.

Run:  python examples/storage_reliability.py
"""

import numpy as np

from repro.burstbuffer import BurstBufferConfig, best_utilization
from repro.diagnosis import PeerComparator, evaluate_detector
from repro.erasure import ReedSolomon, diskreduce_capacity_overhead, mttdl_mirrored, mttdl_rs
from repro.failure import MachineTrend


def main() -> None:
    print("1. DiskReduce: protection vs capacity overhead")
    mttf, mttr = 1.0e6, 24.0
    schemes = [
        ("3-replication", mttdl_mirrored(mttf, mttr), diskreduce_capacity_overhead("3-replication")),
        ("RS 8+2", mttdl_rs(mttf, mttr, 8, 2), diskreduce_capacity_overhead("rs", 8, 2)),
        ("RS 8+3", mttdl_rs(mttf, mttr, 8, 3), diskreduce_capacity_overhead("rs", 8, 3)),
    ]
    for name, mttdl, ovh in schemes:
        print(f"   {name:<15} MTTDL {mttdl / 8766:>12.3g} years   overhead {ovh:.0%}")
    rs = ReedSolomon(8, 2)
    data = bytes(np.random.default_rng(0).integers(0, 256, 4096, dtype=np.uint8))
    shares = rs.encode(data)
    recovered = rs.decode({i: shares[i] for i in (0, 1, 3, 4, 5, 6, 8, 9)}, len(data))
    print(f"   8+2 recovery with shares 2 and 7 lost: {'ok' if recovered == data else 'FAIL'}\n")

    print("2. Peer-comparison diagnosis (20 servers, injected faults)")
    stats = evaluate_detector(PeerComparator(), n_trials=20, n_servers=20, seed=11)
    print(f"   true positives : {stats['true_positive_rate']:.0%} (report: >= 66%)")
    print(f"   false positives: {stats['false_positive_rate']:.0%} (report: essentially none)")
    for kind, rate in stats["per_fault"].items():
        print(f"   {kind:<11}: {rate:.0%} detected")
    print()

    print("3. Burst buffer vs Fig 5's utilization collapse")
    trend = MachineTrend(chip_doubling_months=24.0)
    cfg = BurstBufferConfig(bb_write_Bps=10e9, drain_Bps=1e9, pfs_direct_Bps=1e9)
    ckpt = 900e9
    print(f"   {'year':<6}{'MTTI':>10}{'direct':>9}{'with BB':>9}")
    for year in range(2008, 2019, 2):
        mtti = trend.mtti_s(float(year))
        d = best_utilization(mtti, ckpt, cfg, via_bb=False)["utilization"]
        b = best_utilization(mtti, ckpt, cfg, via_bb=True)["utilization"]
        print(f"   {year:<6}{mtti / 60:>8.0f}m {d:>8.1%} {b:>8.1%}")
    print("\n   the flash tier defers the <50% crossing by years; near exascale")
    print("   the drain bandwidth (not the flash) becomes the binding limit")


if __name__ == "__main__":
    main()
