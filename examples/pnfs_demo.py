#!/usr/bin/env python
"""pNFS vs plain NFS: the scaling story behind a decade of IETF work.

Runs the full NFSv4.1 layout protocol (LAYOUTGET, direct striped I/O,
LAYOUTCOMMIT, LAYOUTRETURN, recalls) on the simulated cluster and sweeps
client counts for both data paths.

Run:  python examples/pnfs_demo.py
"""

from repro.pnfs import LayoutKind, LayoutManager, run_scaling_experiment
from repro.pnfs.server import NFSParams
from repro.pfs.layout import StripeLayout


def protocol_walkthrough() -> None:
    print("NFSv4.1 layout protocol walkthrough")
    mgr = LayoutManager(StripeLayout(4, 1 << 20))
    layout = mgr.grant(client_id=7, path="/vol/ckpt", kind=LayoutKind.FILE)
    print(f"  LAYOUTGET    -> layout {layout.layout_id} ({layout.kind.value}, {layout.iomode})")
    servers = layout.servers_for(0, 8 << 20)
    print(f"  direct I/O   -> stripes on data servers {servers}")
    mgr.check_io(layout, 0, 8 << 20, write=True)
    size = mgr.commit(layout, 8 << 20)
    print(f"  LAYOUTCOMMIT -> MDS now shows size {size}")
    recalled = mgr.recall_file("/vol/ckpt")
    print(f"  CB_LAYOUTRECALL -> {len(recalled)} layout(s) recalled (restripe)")
    mgr.layout_return(layout)
    print(f"  LAYOUTRETURN -> outstanding layouts: {mgr.outstanding('/vol/ckpt')}")
    needs = {k: LayoutManager.commit_required(k, extended_file=False) for k in LayoutKind}
    print(f"  commit-required when not growing: "
          + ", ".join(f"{k.value}={v}" for k, v in needs.items()))
    print()


def scaling() -> None:
    params = NFSParams()
    rows = run_scaling_experiment([1, 2, 4, 8, 16], nbytes_per_client=16 << 20, params=params)
    print(f"aggregate write bandwidth, {params.n_data_servers} data servers")
    print(f"{'clients':>8}{'NFS MB/s':>11}{'pNFS MB/s':>12}{'speedup':>9}")
    for r in rows:
        print(f"{r['clients']:>8}{r['nfs_MBps']:>11.0f}{r['pnfs_MBps']:>12.0f}{r['speedup']:>8.1f}x")
    print(
        "\nNFS funnels every byte through one server NIC (~112 MB/s ceiling);\n"
        "pNFS separates metadata from data and scales with data servers —\n"
        "'eliminating the server bottlenecks inherent to NAS access methods'."
    )


if __name__ == "__main__":
    protocol_walkthrough()
    scaling()
