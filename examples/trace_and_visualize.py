#!/usr/bin/env python
"""Figs 1/3/15: trace a real PLFS run, classify it, survey file systems.

1. Run a strided checkpoint through PLFS with tracing handles (the LANL
   trace-library workflow), classify the pattern like Ninjat's images
   show it, and print a coarse ASCII render of the wrapped-file raster.
2. Bin a synthetic NWChem-like trace into CVIEW matrices (Fig 1 data).
3. Survey eleven synthetic file systems fsstats-style (Fig 3).

Run:  python examples/trace_and_visualize.py
"""

import itertools
import tempfile
from pathlib import Path

import numpy as np

from repro import Plfs
from repro.tracing.ninjat import save_ppm
from repro.tracing import (
    FS_PROFILES,
    TraceLog,
    TracingWriteHandle,
    classify_pattern,
    cview_bins,
    raster_wrapped,
    survey_summary,
    synth_app_trace,
    synth_file_sizes,
)


def traced_checkpoint() -> TraceLog:
    root = Path(tempfile.mkdtemp(prefix="plfs-trace-"))
    fs = Plfs(root / "mnt")
    fs.create("/ckpt")
    log = TraceLog()
    clock = itertools.count()
    n_ranks, record, steps = 6, 512, 10
    handles = [
        TracingWriteHandle(
            fs.open_write("/ckpt", writer=f"rank{r}", create=False),
            log, rank=r, path="/ckpt", clock=clock,
        )
        for r in range(n_ranks)
    ]
    for s in range(steps):
        for r, h in enumerate(handles):
            h.write(bytes([r + 1]) * record, (s * n_ranks + r) * record)
    for h in handles:
        h.close()
    return log


GLYPHS = " 123456789abcdef"


def main() -> None:
    log = traced_checkpoint()
    verdict = classify_pattern(log)
    print("Fig 15: Ninjat pattern analysis of a live PLFS trace")
    print(f"  label={verdict['label']}  interleave={verdict['interleave']:.2f}  "
          f"strided ranks={verdict['strided_ranks']:.2f}")
    img = raster_wrapped(log, width=60, height=6)
    for row in img:
        print("  " + "".join(GLYPHS[v % len(GLYPHS)] for v in row))
    print("  (each glyph = the rank owning that region of the shared file)")
    ppm = Path(tempfile.gettempdir()) / "ninjat_wrapped.ppm"
    save_ppm(raster_wrapped(log, width=480, height=320), ppm)
    print(f"  full-resolution image written to {ppm}\n")

    print("Fig 1: CVIEW-style binning of an NWChem/WRF-shaped trace")
    app = synth_app_trace(n_ranks=8, n_phases=5, rng=np.random.default_rng(3))
    bins = cview_bins(app, n_bins=48)
    scale = bins["calls"].max() or 1.0
    for r, row in enumerate(bins["calls"]):
        line = "".join(GLYPHS[min(int(v / scale * 15), 15)] for v in row)
        print(f"  rank {r}: {line}")
    print("  (columns = time bins; bursts line up across ranks)\n")

    print("Fig 3: fsstats survey of eleven file systems")
    rng = np.random.default_rng(9)
    header = f"  {'file system':<20}{'median':>10}{'p90':>12}{'p99':>12}{'<=4K':>7}"
    print(header)
    for name, profile in FS_PROFILES.items():
        sizes = synth_file_sizes(profile, 4000, rng)
        s = survey_summary(sizes)
        print(
            f"  {name:<20}{s['median_bytes'] / 1e3:>9.0f}K"
            f"{s['p90_bytes'] / 1e6:>11.1f}M{s['p99_bytes'] / 1e6:>11.1f}M"
            f"{s['frac_under_4k']:>7.0%}"
        )
    print("\n  (report Fig 3: medians KB-MB, heavy multi-GB tails, wide spread)")


if __name__ == "__main__":
    main()
