#!/usr/bin/env python
"""Fig 8 in miniature: PLFS checkpoint speedups per application and FS.

Replays application-shaped N-1 checkpoint patterns (FLASH-like,
Chombo-like, a LANL-production-like code, QCD-like, S3D-like) on the
simulated parallel file system, directly and through PLFS, for each of
the three deployed-FS personalities.

Run:  python examples/checkpoint_speedup.py [n_ranks]
"""

import sys

import numpy as np

from repro.pfs import GPFS_LIKE, LUSTRE_LIKE, PANFS_LIKE
from repro.plfs.simbridge import speedup
from repro.workloads import APP_CATALOG, app_pattern


def main(n_ranks: int = 32) -> None:
    rng = np.random.default_rng(7)
    print(f"{n_ranks} ranks, 8 storage servers per file system\n")
    header = f"{'application':<18}{'file system':<14}{'direct MB/s':>12}{'PLFS MB/s':>12}{'speedup':>9}"
    print(header)
    print("-" * len(header))
    for key, profile in APP_CATALOG.items():
        pattern = app_pattern(profile, n_ranks, rng)
        for params in (PANFS_LIKE, LUSTRE_LIKE, GPFS_LIKE):
            direct, plfs, ratio = speedup(params.with_servers(8), pattern)
            print(
                f"{profile.name:<18}{params.name:<14}"
                f"{direct.bandwidth_MBps:>12.1f}{plfs.bandwidth_MBps:>12.1f}"
                f"{ratio:>8.1f}x"
            )
        print()
    print(
        "Expected shape (report Fig 8): small unaligned strided patterns\n"
        "(FLASH, QCD) gain the most; segmented large-record patterns (S3D)\n"
        "the least; every file system benefits."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 32)
