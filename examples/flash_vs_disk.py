#!/usr/bin/env python
"""Table 1 + Figs 11/14: flash devices vs magnetic disk.

Runs the IOZone-like sweeps on the five catalog devices and a 7200rpm
disk, then the one-hour-equivalent sustained random-write test that
exposes the pre-erase-pool cliff.

Run:  python examples/flash_vs_disk.py
"""

import numpy as np

from repro.devices import DEVICE_CATALOG, Disk, device_model
from repro.workloads import iozone_bandwidth_sweep, iozone_random_iops


def main() -> None:
    print("Table 1: peak bandwidth and fresh 4K IOPS (model vs published)\n")
    header = (
        f"{'device':<30}{'conn':<9}{'read MB/s':>10}{'write MB/s':>11}"
        f"{'rd kIOPS':>10}{'wr kIOPS':>10}"
    )
    print(header)
    print("-" * len(header))
    for key, spec in DEVICE_CATALOG.items():
        dev = device_model(key)
        seq_r, seq_w = iozone_bandwidth_sweep(dev, total_bytes=32 << 20)
        r_k, w_k = iozone_random_iops(dev, n_ops=800)
        print(
            f"{spec.name:<30}{spec.connection:<9}{seq_r:>10.0f}{seq_w:>11.0f}"
            f"{r_k:>10.1f}{w_k:>10.1f}"
        )
    disk = Disk()
    seq_r, seq_w = iozone_bandwidth_sweep(disk, total_bytes=32 << 20)
    r_k, w_k = iozone_random_iops(Disk(), n_ops=400)
    print(
        f"{'7200rpm SATA disk':<30}{'SATA':<9}{seq_r:>10.0f}{seq_w:>11.0f}"
        f"{r_k:>10.2f}{w_k:>10.2f}"
    )

    print("\nFig 14: sustained 4K random writes (fresh IOPS -> steady IOPS)\n")
    header2 = f"{'device':<30}{'fresh kIOPS':>12}{'steady kIOPS':>13}{'degradation':>12}{'write amp':>10}"
    print(header2)
    print("-" * len(header2))
    for key, spec in DEVICE_CATALOG.items():
        dev = device_model(key)
        res = dev.sustained_random_write(
            5 * dev.params.user_pages, np.random.default_rng(11)
        )
        print(
            f"{spec.name:<30}{res.fresh_iops / 1e3:>12.1f}{res.steady_iops / 1e3:>13.2f}"
            f"{res.degradation_factor:>11.1f}x{res.write_amplification:>10.2f}"
        )
    print(
        "\nExpected shape (report): random reads orders of magnitude above\n"
        "disk; random writes below reads; sustained random writing collapses\n"
        "once the pre-erased page pool depletes, least on the PCIe devices\n"
        "with generous overprovisioning."
    )


if __name__ == "__main__":
    main()
