#!/usr/bin/env python
"""Quickstart: PLFS on a real directory.

Four "ranks" concurrently write an N-1 strided checkpoint into one
logical file; PLFS turns every write into a sequential append to that
writer's own log.  We then stat the file, read it back, and flatten the
container into an ordinary flat file.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import Plfs, flatten


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="plfs-quickstart-"))
    fs = Plfs(root / "mnt")
    print(f"PLFS mounted on backing directory {root / 'mnt'}")

    # --- concurrent N-1 strided checkpoint -------------------------------
    fs.create("/ckpt")
    n_ranks, record, steps = 4, 1024, 8
    handles = [
        fs.open_write("/ckpt", writer=f"rank{r}", create=False)
        for r in range(n_ranks)
    ]
    for step in range(steps):
        for rank, h in enumerate(handles):
            offset = (step * n_ranks + rank) * record
            h.write(bytes([rank + 1]) * record, offset)
    for h in handles:
        h.close()

    info = fs.stat("/ckpt")
    print(
        f"checkpoint written: size={info['size']} bytes, "
        f"{info['droppings']} data droppings (one per writer)"
    )

    # --- read back through the merged index ------------------------------
    data = fs.read_file("/ckpt")
    assert len(data) == n_ranks * record * steps
    # each record is intact despite the interleaved writes:
    for step in range(steps):
        for rank in range(n_ranks):
            off = (step * n_ranks + rank) * record
            assert data[off:off + record] == bytes([rank + 1]) * record
    print("read-back verified: every rank's records intact, last-writer-wins")

    # --- flatten for non-PLFS consumers -----------------------------------
    flat = root / "ckpt.flat"
    size = flatten(fs._resolve("/ckpt"), flat)
    assert flat.read_bytes() == data
    print(f"flattened container to {flat} ({size} bytes)")

    # --- overwrite semantics ---------------------------------------------
    w = fs.open_write("/ckpt", writer="fixer", create=False)
    w.write(b"\xff" * 10, 5)
    w.close()
    patched = fs.read_file("/ckpt")
    assert patched[5:15] == b"\xff" * 10 and patched[:5] == data[:5]
    print("overwrite resolved by timestamp: PLFS index is last-writer-wins")


if __name__ == "__main__":
    main()
