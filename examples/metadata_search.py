#!/usr/bin/env python
"""Spyglass-style metadata search: partition pruning vs a full table scan.

Builds a 100k-file namespace with realistic subtree locality, runs a few
QUASAR-syntax queries through both indexes, and reports scan savings —
the "10-1000x faster than databases" PDSI claim.

Run:  python examples/metadata_search.py
"""

import numpy as np

from repro.metasearch import FlatScanIndex, PartitionedIndex, parse_query, synth_namespace


def main() -> None:
    records = synth_namespace(100_000, np.random.default_rng(7))
    flat = FlatScanIndex(records)
    part = PartitionedIndex(records)
    sec = PartitionedIndex(records, partition_by="owner")
    print(f"namespace: {len(records)} files, {len(part.partitions)} subtree partitions\n")
    queries = [
        "project=3; ext=.h5",
        "owner=5; size>1000000",
        "dir=/proj2; mtime<200",
        "size>50000000; mtime>300",
        "owner=12",
    ]
    header = f"{'query':<32}{'hits':>7}{'flat scan':>11}{'pruned scan':>13}{'speedup':>9}"
    print(header)
    print("-" * len(header))
    for text in queries:
        q = parse_query(text)
        hits_f, sf = flat.search(q)
        index = sec if q.owner is not None and q.ext is None else part
        hits_p, sp = index.search(q)
        assert len(hits_f) == len(hits_p)
        speedup = sf.records_scanned / max(sp.records_scanned, 1)
        print(
            f"{text:<32}{len(hits_p):>7}{sf.records_scanned:>11}"
            f"{sp.records_scanned:>13}{speedup:>8.0f}x"
        )
    print(
        "\nPartition summaries prune subtrees that cannot match; security-\n"
        "aware (owner) partitioning maximizes pruning for owner-restricted\n"
        "queries.  A corrupted partition rebuilds from its region alone."
    )


if __name__ == "__main__":
    main()
