#!/usr/bin/env python
"""Figures 4 & 5: failure-rate fits and the road to exascale.

1. Synthesize a LANL-like fleet of interrupt logs, fit interrupts vs
   chip count (the report's linear model, slope ~0.1/chip/year).
2. Project MTTI along top500 trends for three per-chip growth rates.
3. Feed the MTTI into the Daly checkpoint model and find the year the
   largest machine's effective utilization crosses below 50%.

Run:  python examples/exascale_projection.py
"""

import numpy as np

from repro.failure import (
    MachineTrend,
    fit_interrupts_vs_chips,
    project_mtti,
    project_utilization,
    utilization_crossing_year,
)
from repro.failure.traces import synth_lanl_fleet


def main() -> None:
    rng = np.random.default_rng(42)
    fleet = synth_lanl_fleet(rng, years=9.0)
    fit = fit_interrupts_vs_chips(fleet)
    print("Fig 4 (left): interrupts vs system size")
    for tr in fleet:
        print(f"  {tr.system:<6} {tr.n_chips:>6} chips  {tr.interrupts_per_year:8.1f} interrupts/yr")
    print(
        f"  fit: {fit['slope_per_chip_year']:.3f} interrupts/chip/year "
        f"(R^2={fit['r2']:.3f}; report uses 0.1)\n"
    )

    years = np.arange(2008, 2021)
    print("Fig 4 (right): projected MTTI, 1 PF in 2008, speed 2x/year")
    print(f"  {'year':<6}" + "".join(f"chip 2x/{m:g}mo".rjust(16) for m in (18, 24, 30)))
    trends = {m: MachineTrend(chip_doubling_months=m) for m in (18.0, 24.0, 30.0)}
    mtti = {m: project_mtti(t, years) for m, t in trends.items()}
    for i, y in enumerate(years):
        row = f"  {int(y):<6}"
        for m in (18.0, 24.0, 30.0):
            row += f"{mtti[m][i] / 60.0:>13.1f} min"
        print(row)

    print("\nFig 5: effective application utilization (balanced storage)")
    trend = trends[24.0]
    util = project_utilization(trend, years, base_delta_s=900.0)
    for y, u in zip(years, util):
        bar = "#" * int(u * 40)
        print(f"  {int(y):<6}{u:6.1%}  {bar}")
    crossing = utilization_crossing_year(trend, 0.5, base_delta_s=900.0)
    print(
        f"\n  utilization crosses 50% in {crossing:.1f} "
        "(report: 'may cross under 50% before 2014')"
    )
    pp = 0.5 * (1 - 0.05)
    print(f"  process-pairs alternative pins utilization near {pp:.0%}, failure-insensitive")


if __name__ == "__main__":
    main()
