#!/usr/bin/env python
"""Fig 7: GIGA+ directory scaling under a Metarates create storm.

Clients with deliberately stale partition maps hammer one directory;
GIGA+ splits partitions independently and corrects clients lazily.

Run:  python examples/scalable_directory.py
"""

from repro.giga import run_metarates


def main() -> None:
    n_clients, files_per_client = 16, 500
    print(
        f"{n_clients} clients x {files_per_client} creates into one directory\n"
    )
    header = (
        f"{'servers':>8}{'creates/s':>12}{'scaling':>9}{'partitions':>12}"
        f"{'splits':>8}{'addr errors':>13}{'errs/create':>13}"
    )
    print(header)
    print("-" * len(header))
    base = None
    for n_servers in (1, 2, 4, 8, 16, 32):
        res = run_metarates(n_servers, n_clients, files_per_client)
        if base is None:
            base = res.creates_per_s
        print(
            f"{n_servers:>8}{res.creates_per_s:>12.0f}{res.creates_per_s / base:>8.1f}x"
            f"{res.partitions:>12}{res.splits:>8}{res.addressing_errors:>13}"
            f"{res.errors_per_create:>13.3f}"
        )
    print(
        "\nExpected shape (report Fig 7): throughput grows near-linearly\n"
        "with servers; stale clients are corrected in a bounded number of\n"
        "extra hops, so addressing errors stay a small constant per create."
    )


if __name__ == "__main__":
    main()
